package core_test

// Differential tests pinning the compiled literal path (LiteralProgram
// over a Snapshot's interned attribute arena, or an AttrIndex's mutable
// pairs) to the legacy map-based evaluation on GFD, which is retained as
// the oracle. Topology is irrelevant to literal semantics, so matches are
// arbitrary node vectors, not isomorphic embeddings — that exercises the
// evaluation lattice (missing attributes, unknown constants, tautologies)
// far more densely than real match sets would.

import (
	"fmt"
	"math/rand"
	"testing"

	"gfd/internal/core"
	"gfd/internal/graph"
	"gfd/internal/pattern"
)

// randomAttrGraph builds a graph whose nodes carry random subsets of a
// small attribute/value universe, so every combination of present/missing
// attributes and equal/unequal values occurs.
func randomAttrGraph(rng *rand.Rand, n int) *graph.Graph {
	attrs := []string{"a", "b", "c", "val"}
	labels := []string{"person", "city", "val"} // "val" doubles as a label:
	// attr names colliding with labels get out-of-lexicographic Sym codes,
	// which the arena's per-node sort must handle.
	g := graph.New(n, 0)
	for i := 0; i < n; i++ {
		t := graph.Attrs{}
		for _, a := range attrs {
			if rng.Intn(3) > 0 { // ~1/3 missing
				t[a] = fmt.Sprintf("v%d", rng.Intn(4))
			}
		}
		if len(t) == 0 {
			t = nil
		}
		g.AddNode(labels[rng.Intn(len(labels))], t)
	}
	return g
}

// randomRule builds a GFD over a k-node wildcard pattern with random
// constant/variable literals, including unknown attributes and constants
// the graph never mentions.
func randomRule(rng *rand.Rand, name string, k int) *core.GFD {
	q := pattern.New()
	vars := make([]pattern.Var, k)
	for i := 0; i < k; i++ {
		vars[i] = pattern.Var(fmt.Sprintf("x%d", i))
		q.AddNode(vars[i], pattern.Wildcard)
	}
	attrs := []string{"a", "b", "c", "val", "ghost"} // "ghost" never occurs in the graph
	randLit := func() core.Literal {
		x := vars[rng.Intn(k)]
		a := attrs[rng.Intn(len(attrs))]
		if rng.Intn(2) == 0 {
			c := fmt.Sprintf("v%d", rng.Intn(4))
			if rng.Intn(5) == 0 {
				c = "unknown-constant" // absent from every node: neverX/neverY short-circuit
			}
			return core.Const(x, a, c)
		}
		y := vars[rng.Intn(k)]
		return core.VarEq(x, a, y, attrs[rng.Intn(len(attrs))])
	}
	side := func() []core.Literal {
		ls := make([]core.Literal, rng.Intn(3)) // may be empty
		for i := range ls {
			ls[i] = randLit()
		}
		return ls
	}
	return core.MustNew(name, q, side(), side())
}

func randomMatch(rng *rand.Rand, k, n int) core.Match {
	m := make(core.Match, k)
	for i := range m {
		m[i] = graph.NodeID(rng.Intn(n))
	}
	return m
}

func TestLiteralProgramMatchesOracle(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 60; trial++ {
		n := 5 + rng.Intn(20)
		g := randomAttrGraph(rng, n)
		snap := g.Freeze()
		for ri := 0; ri < 8; ri++ {
			k := 1 + rng.Intn(3)
			f := randomRule(rng, fmt.Sprintf("t%d-r%d", trial, ri), k)
			p := f.ProgramFor(snap.Syms())
			for mi := 0; mi < 25; mi++ {
				h := randomMatch(rng, k, n)
				if got, want := p.SatisfiesX(snap, h), f.SatisfiesX(g, h); got != want {
					t.Fatalf("%s: SatisfiesX(%v) compiled=%v oracle=%v", f, h, got, want)
				}
				if got, want := p.SatisfiesY(snap, h), f.SatisfiesY(g, h); got != want {
					t.Fatalf("%s: SatisfiesY(%v) compiled=%v oracle=%v", f, h, got, want)
				}
				if got, want := p.IsViolation(snap, h), f.IsViolation(g, h); got != want {
					t.Fatalf("%s: IsViolation(%v) compiled=%v oracle=%v", f, h, got, want)
				}
				if got, want := p.Holds(snap, h), f.Holds(g, h); got != want {
					t.Fatalf("%s: Holds(%v) compiled=%v oracle=%v", f, h, got, want)
				}
			}
		}
	}
}

// TestLiteralProgramAttrIndex pins the mutable-index path (what the
// incremental detector evaluates against) to the oracle, across attribute
// mutations that introduce previously-unseen values — including a rule
// constant that only starts occurring after compilation, the case
// InternLiterals exists for.
func TestLiteralProgramAttrIndex(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 5 + rng.Intn(15)
		g := randomAttrGraph(rng, n)
		ix := graph.NewAttrIndex(g)
		k := 1 + rng.Intn(3)
		rules := make([]*core.GFD, 6)
		progs := make([]*core.LiteralProgram, len(rules))
		for i := range rules {
			rules[i] = randomRule(rng, fmt.Sprintf("t%d-r%d", trial, i), k)
			rules[i].InternLiterals(ix.Syms())
		}
		for i, f := range rules {
			progs[i] = f.CompileLiterals(ix.Syms())
		}
		check := func(stage string) {
			for i, f := range rules {
				for mi := 0; mi < 20; mi++ {
					h := randomMatch(rng, k, n)
					if got, want := progs[i].IsViolation(ix, h), f.IsViolation(g, h); got != want {
						t.Fatalf("%s %s: IsViolation(%v) index=%v oracle=%v", stage, f, h, got, want)
					}
				}
			}
		}
		check("initial")
		// Mutate: some updates write "unknown-constant", the value some
		// rules were compiled against before it existed anywhere.
		for u := 0; u < 12; u++ {
			v := graph.NodeID(rng.Intn(n))
			a := []string{"a", "b", "c", "val"}[rng.Intn(4)]
			val := fmt.Sprintf("v%d", rng.Intn(4))
			if rng.Intn(4) == 0 {
				val = "unknown-constant"
			}
			g.SetAttr(v, a, val)
			ix.SetAttr(v, a, val)
		}
		check("after-mutation")
	}
}

// TestLiteralProgramZeroAlloc asserts steady-state literal checking stays
// off the allocator entirely: the per-match cost is binary searches over
// the interned arena and integer compares.
func TestLiteralProgramZeroAlloc(t *testing.T) {
	g := graph.New(4, 0)
	g.AddNode("person", graph.Attrs{"a": "v1", "b": "v2", "val": "v1"})
	g.AddNode("person", graph.Attrs{"a": "v1", "b": "v3", "val": "v2"})
	g.AddNode("city", graph.Attrs{"a": "v2"})
	g.AddNode("city", nil)
	q := pattern.New()
	q.AddNode("x", "person")
	q.AddNode("y", "city")
	f := core.MustNew("alloc", q,
		[]core.Literal{core.Const("x", "a", "v1"), core.VarEq("x", "val", "y", "a")},
		[]core.Literal{core.VarEq("x", "b", "y", "a"), core.Const("y", "a", "v2")},
	)
	snap := g.Freeze()
	p := f.ProgramFor(snap.Syms())
	matches := []core.Match{{0, 2}, {1, 2}, {0, 3}, {1, 3}}
	sink := false
	allocs := testing.AllocsPerRun(200, func() {
		for _, h := range matches {
			sink = sink != p.IsViolation(snap, h)
			sink = sink != p.SatisfiesX(snap, h)
			sink = sink != p.SatisfiesY(snap, h)
		}
	})
	_ = sink
	if allocs != 0 {
		t.Fatalf("steady-state literal checking allocates: %v allocs/op", allocs)
	}
}

// TestProgramForCaching verifies the per-(rule, snapshot) memoization and
// that recompiling against a different table yields table-specific
// programs (the unknown-constant short-circuit differs per graph).
func TestProgramForCaching(t *testing.T) {
	q := pattern.New()
	q.AddNode("x", pattern.Wildcard)
	f := core.MustNew("cache", q, nil, []core.Literal{core.Const("x", "a", "rare")})

	g1 := graph.New(1, 0)
	g1.AddNode("n", graph.Attrs{"a": "rare"})
	s1 := g1.Freeze()
	g2 := graph.New(1, 0)
	g2.AddNode("n", graph.Attrs{"a": "common"})
	s2 := g2.Freeze()

	p1 := f.ProgramFor(s1.Syms())
	if again := f.ProgramFor(s1.Syms()); again != p1 {
		t.Fatal("ProgramFor must return the cached program for the same table")
	}
	h := core.Match{0}
	if p1.IsViolation(s1, h) {
		t.Fatal("x.a = rare holds on g1; no violation expected")
	}
	p2 := f.ProgramFor(s2.Syms())
	if !p2.IsViolation(s2, h) {
		t.Fatal("x.a = rare fails on g2 (value absent): violation expected")
	}
}
