// Package core implements the GFD language itself — the primary
// contribution of Fan, Wu & Xu, "Functional Dependencies for Graphs"
// (SIGMOD 2016, Section 3): functional dependencies of the form
//
//	ϕ = (Q[x̄], X → Y)
//
// where Q is a graph pattern (topological constraint) and X, Y are sets of
// literals over x̄ (attribute-value dependency). Constant literals x.A = c
// give GFDs the power of CFDs; variable literals x.A = y.B give them the
// power of FDs and EGDs.
package core

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"gfd/internal/graph"
	"gfd/internal/pattern"
)

// LiteralKind distinguishes constant literals (x.A = c) from variable
// literals (x.A = y.B).
type LiteralKind uint8

const (
	// Constant is a literal of the form x.A = c.
	Constant LiteralKind = iota
	// Variable is a literal of the form x.A = y.B.
	Variable
)

// Literal is an equality atom over the variables of a pattern.
type Literal struct {
	X    pattern.Var // left variable
	A    string      // left attribute
	Kind LiteralKind
	C    string      // constant value, when Kind == Constant
	Y    pattern.Var // right variable, when Kind == Variable
	B    string      // right attribute, when Kind == Variable
}

// Const builds a constant literal x.A = c.
func Const(x pattern.Var, a, c string) Literal {
	return Literal{X: x, A: a, Kind: Constant, C: c}
}

// VarEq builds a variable literal x.A = y.B.
func VarEq(x pattern.Var, a string, y pattern.Var, b string) Literal {
	return Literal{X: x, A: a, Kind: Variable, Y: y, B: b}
}

// IsTautology reports whether the literal is trivially true (x.A = x.A).
// Note that per GFD semantics a tautology in Y is *not* vacuous: it forces
// h(x) to carry attribute A (Section 3, "GFDs can specify certain type
// information").
func (l Literal) IsTautology() bool {
	return l.Kind == Variable && l.X == l.Y && l.A == l.B
}

func (l Literal) String() string {
	if l.Kind == Constant {
		return fmt.Sprintf("%s.%s = %q", l.X, l.A, l.C)
	}
	return fmt.Sprintf("%s.%s = %s.%s", l.X, l.A, l.Y, l.B)
}

// GFD is a graph functional dependency ϕ = (Q[x̄], X → Y).
type GFD struct {
	Name string
	Q    *pattern.Pattern
	X    []Literal // antecedent; empty means "always applies"
	Y    []Literal // consequent; empty means trivially satisfied

	// Literal variables resolved to pattern node indices, bound once on
	// first evaluation (literal checking runs per match on the engines'
	// hot path; re-hashing variable names there would dominate). Do not
	// mutate Q, X, or Y after a GFD has been evaluated.
	bindOnce sync.Once
	xb, yb   []boundLiteral

	// Compiled literal program, cached per symbol table: engines share one
	// snapshot across all workers, so the steady state is a pointer
	// compare. Stored atomically because workers race on first use.
	lits atomic.Pointer[compiledLits]
}

// compiledLits pins a LiteralProgram to the symbol table it was lowered on.
type compiledLits struct {
	syms *graph.Symbols
	prog *LiteralProgram
}

// ProgramFor returns ϕ's literal program lowered onto syms, compiling on
// first use per table and cached after that. The single-entry cache fits
// the engine lifecycle (one snapshot per run, shared by every worker);
// alternating between two live tables recompiles per call, which only the
// differential tests do.
func (f *GFD) ProgramFor(syms *graph.Symbols) *LiteralProgram {
	if e := f.lits.Load(); e != nil && e.syms == syms {
		return e.prog
	}
	e := &compiledLits{syms: syms, prog: f.CompileLiterals(syms)}
	f.lits.Store(e)
	return e.prog
}

// New constructs a GFD and validates that every literal variable occurs in
// the pattern.
func New(name string, q *pattern.Pattern, x, y []Literal) (*GFD, error) {
	f := &GFD{Name: name, Q: q, X: x, Y: y}
	if err := f.Check(); err != nil {
		return nil, err
	}
	return f, nil
}

// MustNew is New that panics on error, for tests and static rule tables.
func MustNew(name string, q *pattern.Pattern, x, y []Literal) *GFD {
	f, err := New(name, q, x, y)
	if err != nil {
		panic(err)
	}
	return f
}

// Check verifies well-formedness: each literal references only variables of
// Q and non-empty attribute names.
func (f *GFD) Check() error {
	if f.Q == nil {
		return fmt.Errorf("gfd %s: nil pattern", f.Name)
	}
	check := func(side string, ls []Literal) error {
		for _, l := range ls {
			if _, ok := f.Q.VarIndex(l.X); !ok {
				return fmt.Errorf("gfd %s: %s literal %v: unknown variable %q", f.Name, side, l, l.X)
			}
			if l.A == "" {
				return fmt.Errorf("gfd %s: %s literal %v: empty attribute", f.Name, side, l)
			}
			if l.Kind == Variable {
				if _, ok := f.Q.VarIndex(l.Y); !ok {
					return fmt.Errorf("gfd %s: %s literal %v: unknown variable %q", f.Name, side, l, l.Y)
				}
				if l.B == "" {
					return fmt.Errorf("gfd %s: %s literal %v: empty attribute", f.Name, side, l)
				}
			}
		}
		return nil
	}
	if err := check("X", f.X); err != nil {
		return err
	}
	return check("Y", f.Y)
}

// IsConstant reports whether ϕ is a constant GFD: X and Y consist of
// constant literals only.
func (f *GFD) IsConstant() bool {
	for _, l := range f.X {
		if l.Kind != Constant {
			return false
		}
	}
	for _, l := range f.Y {
		if l.Kind != Constant {
			return false
		}
	}
	return true
}

// IsVariable reports whether ϕ is a variable GFD: X and Y consist of
// variable literals only.
func (f *GFD) IsVariable() bool {
	for _, l := range f.X {
		if l.Kind != Variable {
			return false
		}
	}
	for _, l := range f.Y {
		if l.Kind != Variable {
			return false
		}
	}
	return true
}

// Normalize rewrites ϕ into its normal form (Section 4.2): a set of GFDs
// with the same pattern and antecedent, each with a single consequent
// literal. Tautologies x.A = x.A in Y are kept (they force the attribute to
// exist); an empty Y yields no normalized rules (ϕ holds trivially).
func (f *GFD) Normalize() []*GFD {
	out := make([]*GFD, 0, len(f.Y))
	for i, l := range f.Y {
		out = append(out, &GFD{
			Name: fmt.Sprintf("%s#%d", f.Name, i),
			Q:    f.Q,
			X:    f.X,
			Y:    []Literal{l},
		})
	}
	return out
}

// Size returns |ϕ| = |Q| + |X| + |Y|, the size measure used in complexity
// statements.
func (f *GFD) Size() int { return f.Q.Size() + len(f.X) + len(f.Y) }

func (f *GFD) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s: (%s, ", f.Name, f.Q)
	writeLits(&b, f.X)
	b.WriteString(" -> ")
	writeLits(&b, f.Y)
	b.WriteString(")")
	return b.String()
}

func writeLits(b *strings.Builder, ls []Literal) {
	if len(ls) == 0 {
		b.WriteString("∅")
		return
	}
	for i, l := range ls {
		if i > 0 {
			b.WriteString(" ∧ ")
		}
		b.WriteString(l.String())
	}
}

// ---- Semantics ----------------------------------------------------------
//
// Two evaluation paths implement the semantics below. The compiled path —
// CompileLiterals / ProgramFor in program.go — lowers literals onto a
// snapshot's symbol table and is what every engine runs per match. The
// map-based methods on GFD (SatisfiesX/SatisfiesY/Holds/IsViolation) read
// the mutable graph's Attrs maps directly; they are retained as the
// differential-test oracle and for call sites that interleave evaluation
// with mutation (noise injection).

// Match is an instantiation h(x̄) of a pattern's variables in a graph:
// Match[i] is the graph node matched by pattern node i.
type Match []graph.NodeID

// boundLiteral is a Literal with its variables resolved to pattern node
// indices, so per-match evaluation skips the VarIndex map lookups.
type boundLiteral struct {
	xi   int
	a    string
	kind LiteralKind
	c    string
	yi   int
	b    string
}

func bindLiterals(q *pattern.Pattern, ls []Literal) []boundLiteral {
	if len(ls) == 0 {
		return nil
	}
	out := make([]boundLiteral, len(ls))
	for i, l := range ls {
		b := boundLiteral{a: l.A, kind: l.Kind, c: l.C, b: l.B}
		b.xi, _ = q.VarIndex(l.X)
		if l.Kind == Variable {
			b.yi, _ = q.VarIndex(l.Y)
		}
		out[i] = b
	}
	return out
}

// bind resolves X and Y once per rule; safe under concurrent evaluation
// (workers share rule pointers).
func (f *GFD) bind() {
	f.bindOnce.Do(func() {
		f.xb = bindLiterals(f.Q, f.X)
		f.yb = bindLiterals(f.Q, f.Y)
	})
}

// evalLiteral evaluates a single bound literal on a match. ok is false when
// a referenced attribute is missing; eq is meaningful only when ok.
func evalLiteral(g *graph.Graph, h Match, l boundLiteral) (eq, ok bool) {
	xv, xok := g.Attr(h[l.xi], l.a)
	if !xok {
		return false, false
	}
	if l.kind == Constant {
		return xv == l.c, true
	}
	yv, yok := g.Attr(h[l.yi], l.b)
	if !yok {
		return false, false
	}
	return xv == yv, true
}

// SatisfiesX reports h(x̄) |= X. Following the paper's semantics, a literal
// whose attribute is missing on the matched node makes X unsatisfied (and
// hence the GFD trivially satisfied for this match) — this accommodates the
// semi-structured nature of graphs.
func (f *GFD) SatisfiesX(g *graph.Graph, h Match) bool {
	f.bind()
	for _, l := range f.xb {
		eq, ok := evalLiteral(g, h, l)
		if !ok || !eq {
			return false
		}
	}
	return true
}

// SatisfiesY reports h(x̄) |= Y. In contrast to X, a literal in Y requires
// the attribute to exist: a missing attribute is a violation.
func (f *GFD) SatisfiesY(g *graph.Graph, h Match) bool {
	f.bind()
	for _, l := range f.yb {
		eq, ok := evalLiteral(g, h, l)
		if !ok || !eq {
			return false
		}
	}
	return true
}

// Holds reports h(x̄) |= X → Y: if h satisfies X then it satisfies Y.
func (f *GFD) Holds(g *graph.Graph, h Match) bool {
	if !f.SatisfiesX(g, h) {
		return true
	}
	return f.SatisfiesY(g, h)
}

// IsViolation reports whether h(x̄) is a violation of ϕ: h |= X but h ̸|= Y.
// Map-based oracle path; engines use LiteralProgram.IsViolation.
func (f *GFD) IsViolation(g *graph.Graph, h Match) bool {
	return f.SatisfiesX(g, h) && !f.SatisfiesY(g, h)
}
