package core

import (
	"strings"
	"testing"

	"gfd/internal/graph"
	"gfd/internal/pattern"
)

// capitalPattern builds Q2 of the paper: a country with two capital edges.
func capitalPattern() *pattern.Pattern {
	q := pattern.New()
	x := q.AddNode("x", "country")
	y := q.AddNode("y", "city")
	z := q.AddNode("z", "city")
	q.AddEdge(x, y, "capital")
	q.AddEdge(x, z, "capital")
	return q
}

func TestLiteralConstructorsAndString(t *testing.T) {
	c := Const("x", "city", "Edi")
	if c.Kind != Constant || c.C != "Edi" {
		t.Errorf("Const = %+v", c)
	}
	if got := c.String(); !strings.Contains(got, `x.city = "Edi"`) {
		t.Errorf("String = %q", got)
	}
	v := VarEq("x", "A", "y", "B")
	if v.Kind != Variable || v.Y != "y" {
		t.Errorf("VarEq = %+v", v)
	}
	if got := v.String(); got != "x.A = y.B" {
		t.Errorf("String = %q", got)
	}
}

func TestIsTautology(t *testing.T) {
	if !VarEq("x", "A", "x", "A").IsTautology() {
		t.Error("x.A = x.A is a tautology")
	}
	if VarEq("x", "A", "x", "B").IsTautology() {
		t.Error("x.A = x.B is not a tautology")
	}
	if VarEq("x", "A", "y", "A").IsTautology() {
		t.Error("x.A = y.A is not a tautology")
	}
	if Const("x", "A", "c").IsTautology() {
		t.Error("constant literal is never a tautology")
	}
}

func TestNewValidation(t *testing.T) {
	q := capitalPattern()
	if _, err := New("ok", q, nil, []Literal{VarEq("y", "val", "z", "val")}); err != nil {
		t.Errorf("valid GFD rejected: %v", err)
	}
	cases := []struct {
		name string
		x, y []Literal
	}{
		{"unknown X var", []Literal{Const("nope", "A", "c")}, nil},
		{"unknown Y var", nil, []Literal{Const("nope", "A", "c")}},
		{"unknown right var", nil, []Literal{VarEq("y", "A", "nope", "B")}},
		{"empty attr", nil, []Literal{Const("x", "", "c")}},
		{"empty right attr", nil, []Literal{VarEq("x", "A", "y", "")}},
	}
	for _, tc := range cases {
		if _, err := New(tc.name, q, tc.x, tc.y); err == nil {
			t.Errorf("%s: expected error", tc.name)
		}
	}
	if _, err := New("nilq", nil, nil, nil); err == nil {
		t.Error("nil pattern must be rejected")
	}
}

func TestClassification(t *testing.T) {
	q := capitalPattern()
	varGFD := MustNew("v", q, nil, []Literal{VarEq("y", "val", "z", "val")})
	if !varGFD.IsVariable() || varGFD.IsConstant() {
		t.Error("variable GFD misclassified")
	}
	constGFD := MustNew("c", q, []Literal{Const("x", "val", "AU")}, []Literal{Const("y", "val", "Canberra")})
	if !constGFD.IsConstant() || constGFD.IsVariable() {
		t.Error("constant GFD misclassified")
	}
	mixed := MustNew("m", q, []Literal{Const("x", "val", "AU")}, []Literal{VarEq("y", "val", "z", "val")})
	if mixed.IsConstant() || mixed.IsVariable() {
		t.Error("mixed GFD is neither constant nor variable")
	}
	// Empty X and Y: vacuously both.
	empty := MustNew("e", q, nil, nil)
	if !empty.IsConstant() || !empty.IsVariable() {
		t.Error("empty GFD is vacuously both")
	}
}

func TestNormalize(t *testing.T) {
	q := capitalPattern()
	f := MustNew("f", q,
		[]Literal{Const("x", "val", "AU")},
		[]Literal{VarEq("y", "val", "z", "val"), Const("y", "val", "Canberra")})
	norm := f.Normalize()
	if len(norm) != 2 {
		t.Fatalf("normalized count = %d", len(norm))
	}
	for _, nf := range norm {
		if len(nf.Y) != 1 {
			t.Error("normal form needs single consequent")
		}
		if len(nf.X) != 1 {
			t.Error("antecedent must be preserved")
		}
	}
	if len(MustNew("e", q, nil, nil).Normalize()) != 0 {
		t.Error("empty Y normalizes to nothing")
	}
}

// capitalGraph builds G3-with-error: one country with two capitals with
// different names, like the Canberra/Melbourne inconsistency.
func capitalGraph(conflicting bool) *graph.Graph {
	g := graph.New(0, 0)
	au := g.AddNode("country", graph.Attrs{"val": "Australia"})
	c1 := g.AddNode("city", graph.Attrs{"val": "Canberra"})
	name2 := "Canberra"
	if conflicting {
		name2 = "Melbourne"
	}
	c2 := g.AddNode("city", graph.Attrs{"val": name2})
	g.MustAddEdge(au, c1, "capital")
	g.MustAddEdge(au, c2, "capital")
	return g
}

func TestSemanticsCapitalViolation(t *testing.T) {
	q := capitalPattern()
	phi2 := MustNew("phi2", q, nil, []Literal{VarEq("y", "val", "z", "val")})
	g := capitalGraph(true)
	h := Match{0, 1, 2}
	if !phi2.SatisfiesX(g, h) {
		t.Error("empty X is always satisfied")
	}
	if phi2.SatisfiesY(g, h) {
		t.Error("Canberra != Melbourne")
	}
	if !phi2.IsViolation(g, h) {
		t.Error("expected violation")
	}
	if phi2.Holds(g, h) {
		t.Error("Holds must be false for a violation")
	}
	// Consistent graph: no violation.
	g2 := capitalGraph(false)
	if phi2.IsViolation(g2, Match{0, 1, 2}) {
		t.Error("consistent capitals flagged")
	}
}

func TestSemanticsMissingAttributeInX(t *testing.T) {
	q := pattern.New()
	q.AddNode("x", "acct")
	f := MustNew("f", q,
		[]Literal{Const("x", "is_fake", "true")},
		[]Literal{Const("x", "flagged", "true")})
	g := graph.New(0, 0)
	bare := g.AddNode("acct", nil) // no is_fake attribute
	h := Match{bare}
	// Missing attribute in X: trivially satisfied, no violation.
	if f.SatisfiesX(g, h) {
		t.Error("missing X attribute must not satisfy X")
	}
	if !f.Holds(g, h) {
		t.Error("GFD holds trivially when X attribute is missing")
	}
}

func TestSemanticsMissingAttributeInY(t *testing.T) {
	q := pattern.New()
	q.AddNode("x", "acct")
	f := MustNew("f", q,
		[]Literal{Const("x", "is_fake", "true")},
		[]Literal{Const("x", "flagged", "true")})
	g := graph.New(0, 0)
	v := g.AddNode("acct", graph.Attrs{"is_fake": "true"}) // no flagged attr
	h := Match{v}
	// X satisfied but Y's attribute missing: violation.
	if !f.IsViolation(g, h) {
		t.Error("missing Y attribute must be a violation when X holds")
	}
}

func TestSemanticsTautologyInYForcesAttribute(t *testing.T) {
	f := RequireAttr("req", "person", "name")
	g := graph.New(0, 0)
	with := g.AddNode("person", graph.Attrs{"name": "ann"})
	without := g.AddNode("person", nil)
	if f.IsViolation(g, Match{with}) {
		t.Error("node with attribute must satisfy the type rule")
	}
	if !f.IsViolation(g, Match{without}) {
		t.Error("node lacking the attribute must violate the type rule")
	}
}

func TestSemanticsVariableLiteralAcrossEntities(t *testing.T) {
	// Blog rule ϕ5 shape: x.text = y.desc.
	q := pattern.New()
	x := q.AddNode("x", "status")
	y := q.AddNode("y", "photo")
	q.AddEdge(x, y, "has_attachment")
	f := MustNew("phi5", q, nil, []Literal{VarEq("x", "text", "y", "desc")})

	g := graph.New(0, 0)
	s := g.AddNode("status", graph.Attrs{"text": "sunset"})
	p := g.AddNode("photo", graph.Attrs{"desc": "sunrise"})
	g.MustAddEdge(s, p, "has_attachment")
	if !f.IsViolation(g, Match{s, p}) {
		t.Error("text/desc mismatch must violate")
	}
	g.SetAttr(p, "desc", "sunset")
	if f.IsViolation(g, Match{s, p}) {
		t.Error("matching text/desc must not violate")
	}
}

func TestSizeMeasure(t *testing.T) {
	q := capitalPattern() // |Q| = 3 + 2 = 5
	f := MustNew("f", q, []Literal{Const("x", "a", "1")}, []Literal{Const("y", "b", "2")})
	if f.Size() != 7 {
		t.Errorf("Size = %d, want 7", f.Size())
	}
}

func TestGFDString(t *testing.T) {
	q := capitalPattern()
	f := MustNew("phi2", q, nil, []Literal{VarEq("y", "val", "z", "val")})
	s := f.String()
	if !strings.Contains(s, "phi2") || !strings.Contains(s, "∅") || !strings.Contains(s, "y.val = z.val") {
		t.Errorf("String = %q", s)
	}
}
