// Tests for the session lifecycle over a persisted snapshot: a graph
// adopted from a read-only .gfds mapping must absorb Session.Apply
// batches — including the compactions they trigger — entirely on the
// heap. The mapping is PROT_READ, so a single write through it would
// crash the test; the byte-identical file check closes the remaining
// gap (a rewrite via the path rather than the mapping).
package session_test

import (
	"bytes"
	"context"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"gfd/internal/gen"
	"gfd/internal/graph"
	"gfd/internal/incremental"
	"gfd/internal/store"
	"gfd/internal/validate"
)

// TestApplyOverLoadedSnapshotNeverWritesThrough drives the full update
// lifecycle against a loaded snapshot: Prepare and Detect run straight
// off the mapped CSR arrays with zero snapshot builds, then update
// batches large enough to cross the compaction fraction flow through
// Session.Apply, with every batch cross-checked against a cold
// re-frozen session over a clone. At the end the on-disk file must be
// byte-identical to what Save wrote.
func TestApplyOverLoadedSnapshotNeverWritesThrough(t *testing.T) {
	ctx := context.Background()
	src := gen.YAGO2Like(gen.DatasetConfig{Scale: 30, Seed: 8})
	set := gen.MineGFDs(src, gen.MineConfig{NumRules: 4, PatternSize: 3, TwoCompFrac: 0.3, Seed: 9})
	if set.Len() == 0 {
		t.Skip("no rules mined")
	}
	path := filepath.Join(t.TempDir(), "g.gfds")
	if err := store.Save(ctx, src.Freeze(), path); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	l, err := store.Open(ctx, path)
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	g := l.Snapshot().Graph()
	frozenNodes := g.NumNodes()
	sess := mustOpen(t, g)
	prep, err := sess.Prepare(set)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prep.Detect(ctx, validate.Options{Engine: validate.EngineSequential}); err != nil {
		t.Fatal(err)
	}
	if got := g.SnapshotBuilds(); got != 0 {
		t.Fatalf("detect over the loaded snapshot built %d snapshots, want 0", got)
	}

	// Update volume sized to cross graph.CompactFraction at least once:
	// each batch adds delta against a base of Size() elements.
	labels := g.Labels()
	rng := rand.New(rand.NewSource(10))
	batch := max(1, g.Size()/8)
	for round := 0; round < 4; round++ {
		var ups []incremental.Update
		for i := 0; i < batch; i++ {
			switch i % 3 {
			case 0:
				// Attribute writes land on nodes whose tuples live in the
				// mapped arena — the case write-through would corrupt.
				ups = append(ups, incremental.SetAttr{
					Node: graph.NodeID(rng.Intn(frozenNodes)), Attr: "val", Value: fmt.Sprintf("w%d", round)})
			case 1:
				ups = append(ups, incremental.AddNode{
					Label: labels[rng.Intn(len(labels))], Attrs: graph.Attrs{"val": fmt.Sprintf("n%d", i)}})
			default:
				from := graph.NodeID(rng.Intn(frozenNodes))
				to := graph.NodeID(rng.Intn(frozenNodes))
				if from != to {
					ups = append(ups, incremental.AddEdge{From: from, To: to, Label: "related_to"})
				}
			}
		}
		sess.Apply(ups...)
		res, err := prep.Detect(ctx, validate.Options{Engine: validate.EngineSequential})
		if err != nil {
			t.Fatal(err)
		}
		// Cold reference: a fresh session over a clone of the mutated
		// graph re-freezes from the heap and must agree.
		refPrep, err := mustOpen(t, g.Clone()).Prepare(set)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := refPrep.Detect(ctx, validate.Options{Engine: validate.EngineSequential})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) != len(ref.Violations) {
			t.Fatalf("round %d: loaded-graph path found %d violations, re-freeze %d",
				round, len(res.Violations), len(ref.Violations))
		}
		for i := range res.Violations {
			if res.Violations[i].Key() != ref.Violations[i].Key() {
				t.Fatalf("round %d: violation %d differs: %s vs %s",
					round, i, res.Violations[i].Key(), ref.Violations[i].Key())
			}
		}
	}
	// The sweep must have outgrown the base and compacted: compaction is
	// the path that folds mapped arrays into a fresh heap snapshot, and
	// the one this test exists to exercise.
	if got := g.SnapshotBuilds(); got == 0 {
		t.Fatal("update sweep never compacted; grow the batch size so the delta crosses graph.CompactFraction")
	}

	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Fatal("snapshot file changed on disk: a write reached the mapping")
	}
	// And the file is still openable — the surviving bytes decode to the
	// original graph, not the mutated one.
	l2, err := store.Open(ctx, path)
	if err != nil {
		t.Fatalf("re-open after update sweep: %v", err)
	}
	defer l2.Close()
	if n := l2.Snapshot().NumNodes(); n != frozenNodes {
		t.Fatalf("re-opened snapshot has %d nodes, want the original %d", n, frozenNodes)
	}
}
