// Chaos coverage of the session facade: Prepared.Stream and
// Prepared.Detect must keep the runtime's failure semantics — exactly-once
// delivery under retries, voluntary early stop, honest partial errors —
// when driven through the public lifecycle rather than the engine
// functions directly.
package session_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"gfd/internal/fault"
	"gfd/internal/gen"
	"gfd/internal/session"
	"gfd/internal/validate"
)

// chaosWorkload prepares a noisy mined workload dense enough that faults
// land mid-detection, plus its fault-free reference report.
func chaosWorkload(t *testing.T) (*session.Prepared, *validate.Result) {
	t.Helper()
	g := gen.YAGO2Like(gen.DatasetConfig{Scale: 300, Seed: 9})
	set := gen.MineGFDs(g, gen.MineConfig{NumRules: 6, PatternSize: 4, TwoCompFrac: 0.3, Seed: 13})
	if set.Len() == 0 {
		t.Fatal("no rules mined")
	}
	gen.Inject(g, gen.NoiseConfig{Rate: 0.3, Seed: 11})
	prep, err := mustOpen(t, g).Prepare(set)
	if err != nil {
		t.Fatal(err)
	}
	base, err := prep.Detect(context.Background(), validate.Options{Engine: validate.EngineReplicated, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(base.Violations) == 0 {
		t.Fatal("workload produced no violations; chaos assertions would be vacuous")
	}
	return prep, base
}

// TestStreamUnderFaults: streamed violation sets under seed-derived
// recoverable fault plans equal the fault-free Detect report (exactly-once
// across retries), and an early stop (yield returning false) under a
// worker kill terminates cleanly — yield is never called again, no error
// surfaces, and no goroutine is left behind.
func TestStreamUnderFaults(t *testing.T) {
	ctx := context.Background()
	prep, base := chaosWorkload(t)
	before := runtime.NumGoroutine()

	for seed := int64(1); seed <= 4; seed++ {
		plan := fault.FromSeed(seed, 4, base.Units)
		var got validate.Report
		err := prep.Stream(ctx, validate.Options{Engine: validate.EngineReplicated, N: 4, Inject: plan},
			func(v validate.Violation) bool {
				got = append(got, v)
				return true
			})
		if err != nil {
			t.Fatalf("%v: %v", plan, err)
		}
		got.Sort()
		if !got.Equal(base.Violations) {
			t.Fatalf("%v: streamed set diverged from fault-free Detect (%d vs %d)",
				plan, len(got), len(base.Violations))
		}

		stopPlan := fault.NewPlan(seed).KillWorker(int(seed)%4, 0)
		calls := 0
		err = prep.Stream(ctx, validate.Options{Engine: validate.EngineReplicated, N: 4, Inject: stopPlan},
			func(validate.Violation) bool {
				calls++
				return false
			})
		if err != nil {
			t.Fatalf("%v: early-stopped stream returned %v", stopPlan, err)
		}
		if calls != 1 {
			t.Fatalf("%v: yield called %d times after stopping", stopPlan, calls)
		}
	}

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestDetectPartialThroughSession: an unrecoverable plan surfaces through
// the facade as ErrPartial with the census attached to the result — the
// session layer must not flatten the typed failure.
func TestDetectPartialThroughSession(t *testing.T) {
	g, set := minedWorkload(t, 7)
	prep, err := mustOpen(t, g).Prepare(set)
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.NewPlan(9).KillWorker(0, 0).KillWorker(1, 0)
	res, err := prep.Detect(context.Background(),
		validate.Options{Engine: validate.EngineReplicated, N: 2, Inject: plan})
	if !errors.Is(err, validate.ErrPartial) {
		t.Fatalf("err = %v, want ErrPartial", err)
	}
	var pe *validate.PartialError
	if !errors.As(err, &pe) || len(pe.Failures) == 0 {
		t.Fatalf("err = %v, want *PartialError with failures", err)
	}
	c := res.Completeness
	if c.Complete() || c.WorkerDeaths != 2 || c.Failed != len(pe.Failures) {
		t.Fatalf("census inconsistent with failure list: %+v vs %d failures", c, len(pe.Failures))
	}
}
