package session_test

import (
	"context"
	"fmt"
	"testing"

	"gfd/internal/core"
	"gfd/internal/graph"
	"gfd/internal/incremental"
	"gfd/internal/pattern"
	"gfd/internal/validate"
)

// pairWorkload builds K disjoint A -[e]-> B pairs plus the rule
// Q: x:A -e-> y:B, {} -> x.val = y.val. The pattern is one component of
// radius 1, so workload estimation measures exactly one 1-hop block per
// pivot candidate — which makes the estimation-cache probe assertions
// exact: an isolated Apply delta must re-measure exactly the blocks it
// touched.
func pairWorkload(k int) (*graph.Graph, *core.Set) {
	q := pattern.New()
	x := q.AddNode("x", "A")
	y := q.AddNode("y", "B")
	q.AddEdge(x, y, "e")
	phi := core.MustNew("same_val", q, nil, []core.Literal{core.VarEq("x", "val", "y", "val")})

	g := graph.New(2*k, k)
	for i := 0; i < k; i++ {
		v := fmt.Sprintf("v%d", i)
		bv := v
		if i%5 == 0 { // some violations so detection has work
			bv = v + "_off"
		}
		a := g.AddNode("A", graph.Attrs{"val": v})
		b := g.AddNode("B", graph.Attrs{"val": bv})
		g.MustAddEdge(a, b, "e")
	}
	return g, core.MustNewSet(phi)
}

// TestWarmDetectSkipsEstimation asserts the estimation-cache contract for
// warm rounds: after the first Detect of a variant, repeated repVal and
// disVal rounds perform zero estimation passes and zero block-size
// traversals (EstimationStats is the probe, mirroring the SnapshotBuilds
// pattern) — and disVal's first round shares the base estimation repVal
// already built.
func TestWarmDetectSkipsEstimation(t *testing.T) {
	ctx := context.Background()
	g, set := pairWorkload(12)
	prep, err := mustOpen(t, g).Prepare(set)
	if err != nil {
		t.Fatal(err)
	}
	rep := validate.Options{Engine: validate.EngineReplicated, N: 3}
	want, err := prep.Detect(ctx, rep)
	if err != nil {
		t.Fatal(err)
	}
	cold := prep.Bundle().EstimationStats()
	if cold.Builds == 0 || cold.Measured == 0 {
		t.Fatalf("cold round recorded no estimation work: %+v", cold)
	}

	for round := 1; round <= 3; round++ {
		got, err := prep.Detect(ctx, rep)
		if err != nil {
			t.Fatal(err)
		}
		if !got.Violations.Equal(want.Violations) {
			t.Fatalf("warm round %d diverged", round)
		}
		st := prep.Bundle().EstimationStats()
		if st.Builds != cold.Builds || st.Measured != cold.Measured {
			t.Fatalf("warm round %d ran an estimation pass: %+v vs cold %+v", round, st, cold)
		}
		if st.Reused != cold.Reused+round {
			t.Fatalf("warm round %d: Reused = %d, want %d", round, st.Reused, cold.Reused+round)
		}
	}

	// disVal with the same variant shares the base estimation: its first
	// round attaches ship costs but measures no new blocks, and its warm
	// rounds skip the phase entirely.
	dis := validate.Options{Engine: validate.EngineFragmented, N: 3}
	preDis := prep.Bundle().EstimationStats()
	if _, err := prep.Detect(ctx, dis); err != nil {
		t.Fatal(err)
	}
	st := prep.Bundle().EstimationStats()
	if st.Builds != preDis.Builds || st.Measured != preDis.Measured {
		t.Fatalf("disVal re-ran the shared base estimation: %+v vs %+v", st, preDis)
	}
	preWarm := st
	if _, err := prep.Detect(ctx, dis); err != nil {
		t.Fatal(err)
	}
	st = prep.Bundle().EstimationStats()
	if st.Builds != preWarm.Builds || st.Measured != preWarm.Measured || st.Reused != preWarm.Reused+1 {
		t.Fatalf("warm disVal round was not estimation-free: %+v vs %+v", st, preWarm)
	}
}

// TestApplyInvalidatesOnlyTouchedBlocks asserts the delta-proportional
// invalidation contract: a Session.Apply batch forces one new estimation
// pass, but only the blocks within radius of the touched nodes are
// re-traversed — the rest of the workload is served from the inherited
// size cache, and no snapshot is rebuilt (the overlay path).
func TestApplyInvalidatesOnlyTouchedBlocks(t *testing.T) {
	ctx := context.Background()
	g, set := pairWorkload(12)
	sess := mustOpen(t, g)
	prep, err := sess.Prepare(set)
	if err != nil {
		t.Fatal(err)
	}
	rep := validate.Options{Engine: validate.EngineReplicated, N: 3}
	if _, err := prep.Detect(ctx, rep); err != nil {
		t.Fatal(err)
	}
	builds0 := g.SnapshotBuilds()
	st0 := prep.Bundle().EstimationStats()

	// An isolated new pair: the only block within radius 1 of the touched
	// nodes that belongs to a pivot candidate is the new pair's own —
	// exactly one re-measured traversal.
	ids := sess.Apply(
		incremental.AddNode{Label: "A", Attrs: graph.Attrs{"val": "new"}},
		incremental.AddNode{Label: "B", Attrs: graph.Attrs{"val": "new"}},
	)
	sess.Apply(incremental.AddEdge{From: ids[0], To: ids[1], Label: "e"})
	if _, err := prep.Detect(ctx, rep); err != nil {
		t.Fatal(err)
	}
	st1 := prep.Bundle().EstimationStats()
	if st1.Builds != st0.Builds+1 {
		t.Fatalf("Apply round: Builds = %d, want %d (one fresh pass)", st1.Builds, st0.Builds+1)
	}
	if st1.Measured != st0.Measured+1 {
		t.Fatalf("Apply of an isolated pair re-measured %d blocks, want exactly 1",
			st1.Measured-st0.Measured)
	}

	// An edge between two existing pairs dirties exactly the two blocks
	// whose candidates now reach it (one pivot candidate per pair).
	sess.Apply(incremental.AddEdge{From: graph.NodeID(1), To: graph.NodeID(3), Label: "e"})
	if _, err := prep.Detect(ctx, rep); err != nil {
		t.Fatal(err)
	}
	st2 := prep.Bundle().EstimationStats()
	if st2.Measured != st1.Measured+2 {
		t.Fatalf("cross-pair edge re-measured %d blocks, want exactly 2", st2.Measured-st1.Measured)
	}

	// An attribute write touches no topology: the next pass re-assembles
	// units (values shifted) but re-traverses nothing.
	sess.Apply(incremental.SetAttr{Node: graph.NodeID(0), Attr: "val", Value: "rewritten"})
	if _, err := prep.Detect(ctx, rep); err != nil {
		t.Fatal(err)
	}
	st3 := prep.Bundle().EstimationStats()
	if st3.Builds != st2.Builds+1 || st3.Measured != st2.Measured {
		t.Fatalf("attribute-only Apply: stats %+v, want one pass and zero traversals over %+v", st3, st2)
	}

	// The whole update stream stayed on the overlay path — zero snapshot
	// rebuilds — and detection still agrees with a cold run on the mutated
	// graph.
	if builds := g.SnapshotBuilds(); builds != builds0 {
		t.Fatalf("Apply stream re-froze the graph: %d builds, want %d", builds, builds0)
	}
	warm, err := prep.Detect(ctx, rep)
	if err != nil {
		t.Fatal(err)
	}
	fresh := validate.RepVal(g, set, validate.Options{N: 3})
	if !warm.Violations.Equal(fresh.Violations) {
		t.Fatalf("overlay-backed warm Detect diverged from cold repVal after Apply")
	}
}
