// Tests for the session's delta-overlay update lifecycle: Apply folds
// small mutations into a maintained overlay, prepared bundles follow
// without re-freezing (the Graph.SnapshotBuilds probe), and compaction
// kicks in once the delta outgrows the base.
package session_test

import (
	"context"
	"fmt"
	"math/rand"
	"testing"

	"sync"

	"gfd/internal/core"
	"gfd/internal/gen"
	"gfd/internal/graph"
	"gfd/internal/incremental"
	"gfd/internal/pattern"
	"gfd/internal/session"
	"gfd/internal/validate"
)

// TestApplySweepNeverRefreezes is the acceptance probe: a sweep of update
// batches applied through Session.Apply, with Detect rounds after every
// batch, must build exactly one snapshot (the initial Prepare) while
// agreeing with a cold re-frozen session on a clone after every batch.
func TestApplySweepNeverRefreezes(t *testing.T) {
	ctx := context.Background()
	g := gen.YAGO2Like(gen.DatasetConfig{Scale: 50, Seed: 8})
	set := gen.MineGFDs(g, gen.MineConfig{NumRules: 4, PatternSize: 3, TwoCompFrac: 0.3, Seed: 9})
	if set.Len() == 0 {
		t.Skip("no rules mined")
	}
	sess := mustOpen(t, g)
	prep, err := sess.Prepare(set)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := prep.Detect(ctx, validate.Options{Engine: validate.EngineReplicated, N: 3}); err != nil {
		t.Fatal(err)
	}
	if got := g.SnapshotBuilds(); got != 1 {
		t.Fatalf("prepare + first detect built %d snapshots, want 1", got)
	}

	labels := g.Labels()
	rng := rand.New(rand.NewSource(10))
	for batch := 0; batch < 5; batch++ {
		var ups []incremental.Update
		ups = append(ups,
			incremental.AddNode{Label: labels[rng.Intn(len(labels))], Attrs: graph.Attrs{"val": fmt.Sprintf("u%d", batch)}},
			incremental.SetAttr{Node: graph.NodeID(rng.Intn(g.NumNodes())), Attr: "val", Value: "zap"},
		)
		from := graph.NodeID(rng.Intn(g.NumNodes()))
		to := graph.NodeID(rng.Intn(g.NumNodes()))
		if from != to {
			ups = append(ups, incremental.AddEdge{From: from, To: to, Label: "related_to"})
		}
		sess.Apply(ups...)
		for _, engine := range []validate.Engine{validate.EngineSequential, validate.EngineReplicated} {
			res, err := prep.Detect(ctx, validate.Options{Engine: engine, N: 3})
			if err != nil {
				t.Fatal(err)
			}
			// Cold reference: fresh session over a clone re-freezes and must
			// agree with the overlay-backed warm path.
			refPrep, err := mustOpen(t, g.Clone()).Prepare(set)
			if err != nil {
				t.Fatal(err)
			}
			ref, err := refPrep.Detect(ctx, validate.Options{Engine: engine, N: 3})
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Violations) != len(ref.Violations) {
				t.Fatalf("batch %d %v: overlay path found %d violations, re-freeze %d",
					batch, engine, len(res.Violations), len(ref.Violations))
			}
			for i := range res.Violations {
				if res.Violations[i].Key() != ref.Violations[i].Key() {
					t.Fatalf("batch %d %v: violation %d differs: %s vs %s", batch, engine, i,
						res.Violations[i].Key(), ref.Violations[i].Key())
				}
			}
		}
	}
	if got := g.SnapshotBuilds(); got != 1 {
		t.Fatalf("update sweep built %d snapshots, want 1 (zero rebuilds after the initial freeze)", got)
	}

	// A mutation bypassing the session still forces exactly one re-freeze.
	g.SetAttr(0, "val", "direct")
	if _, err := prep.Detect(ctx, validate.Options{Engine: validate.EngineSequential}); err != nil {
		t.Fatal(err)
	}
	if got := g.SnapshotBuilds(); got != 2 {
		t.Fatalf("direct mutation should re-freeze once, builds = %d, want 2", got)
	}
}

// TestApplyCompactsPastFraction pins the compaction policy: a sustained
// update stream whose cumulative delta repeatedly crosses the size
// fraction compacts — the freeze count grows — but far more slowly than
// the batch count, because each compaction folds the patches into a
// larger base (amortized O(|G|) per Ω(|G|) updates).
func TestApplyCompactsPastFraction(t *testing.T) {
	ctx := context.Background()
	_, set, _ := capitalWorkload() // only the rule set; the graph is built below
	g := graph.New(64, 64)
	au := g.AddNode("country", graph.Attrs{"val": "AU"})
	g.MustAddEdge(au, g.AddNode("city", graph.Attrs{"val": "Canberra"}), "capital")
	for i := 0; i < 40; i++ {
		g.MustAddEdge(au, g.AddNode("city", graph.Attrs{"val": fmt.Sprintf("c%d", i)}), "twin")
	}
	sess := mustOpen(t, g)
	prep, err := sess.Prepare(set)
	if err != nil {
		t.Fatal(err)
	}
	builds := g.SnapshotBuilds()
	const batches = 30
	for i := 0; i < batches; i++ {
		sess.Apply(incremental.AddNode{Label: "city", Attrs: graph.Attrs{"val": "X"}})
	}
	res, err := prep.Detect(ctx, validate.Options{Engine: validate.EngineSequential})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("disconnected inserts created %d violations, want 0", len(res.Violations))
	}
	got := g.SnapshotBuilds()
	if got == builds {
		t.Fatal("delta far past the threshold never compacted")
	}
	if extra := got - builds; extra > batches/4 {
		t.Fatalf("%d compactions for %d batches — compaction is not amortizing", extra, batches)
	}
}

// TestDetectorRecoversFromSharedOverlayMutations pins the stale-detector
// recovery path: mutations that reached the shared overlay through
// Session.Apply (not the detector's own Apply) must be folded in by the
// detector's next Apply with a full sweep — stamping the new version
// while missing those violations would corrupt the maintained report
// behind a true Synced().
func TestDetectorRecoversFromSharedOverlayMutations(t *testing.T) {
	g, set, melbourne := capitalWorkload()
	sess := mustOpen(t, g)
	det := sess.Incremental(set)
	if det.Len() != 2 {
		t.Fatalf("initial detector violations = %d, want 2", det.Len())
	}
	// Repair through the session: the detector does not see this batch.
	sess.Apply(incremental.SetAttr{Node: melbourne, Attr: "val", Value: "Canberra"})
	if det.Synced() {
		t.Fatal("detector must report desynced after a session-side Apply")
	}
	// An unrelated update through the detector must recover the missed
	// repair, not just stamp the version.
	det.Apply(incremental.AddNode{Label: "city", Attrs: graph.Attrs{"val": "Perth"}})
	if !det.Synced() {
		t.Fatal("detector must be synced after its own Apply")
	}
	if det.Len() != 0 {
		t.Fatalf("detector missed the session-side repair: %d violations, want 0", det.Len())
	}
	// And the reverse: a session-side break the detector folds in.
	sess.Apply(incremental.SetAttr{Node: melbourne, Attr: "val", Value: "Melbourne"})
	det.Apply(incremental.AddNode{Label: "city", Attrs: graph.Attrs{"val": "Hobart"}})
	if det.Len() != 2 {
		t.Fatalf("detector missed the session-side break: %d violations, want 2", det.Len())
	}
}

// TestConcurrentDetectAcrossPreparedSetsOverOverlay covers the documented
// concurrency contract on the overlay path: after an Apply, Detect calls
// from several Prepared rule sets may run concurrently — their bundle
// rebuilds intern rule names into the one live symbol table, which must
// be safe against each other and against compiled readers (exercised
// under -race in CI).
func TestConcurrentDetectAcrossPreparedSetsOverOverlay(t *testing.T) {
	ctx := context.Background()
	g, setA, melbourne := capitalWorkload()
	// A second rule set over the same graph with distinct names to intern.
	q := pattern.New()
	x := q.AddNode("x", "country")
	y := q.AddNode("y", "city")
	q.AddEdge(x, y, "capital")
	setB := core.MustNewSet(core.MustNew("cap_named", q, nil,
		[]core.Literal{core.Const("y", "val", "Canberra")}))

	sess := mustOpen(t, g)
	pa, err := sess.Prepare(setA)
	if err != nil {
		t.Fatal(err)
	}
	pb, err := sess.Prepare(setB)
	if err != nil {
		t.Fatal(err)
	}
	for round := 0; round < 5; round++ {
		sess.Apply(incremental.SetAttr{Node: melbourne, Attr: "val", Value: fmt.Sprintf("M%d", round)})
		var wg sync.WaitGroup
		for _, p := range []*session.Prepared{pa, pb} {
			wg.Add(1)
			go func(p *session.Prepared) {
				defer wg.Done()
				if _, err := p.Detect(ctx, validate.Options{Engine: validate.EngineReplicated, N: 2}); err != nil {
					t.Error(err)
				}
			}(p)
		}
		wg.Wait()
	}
}

// TestSessionFollowsDetectorCompaction pins the re-coupling after a
// detector-side compaction: the session must adopt the detector's fresh
// overlay, so post-compaction Detect rounds stay on the no-freeze path.
// Without the OnCompact hookup, every Detect after the first compaction
// silently paid a full re-freeze per update batch.
func TestSessionFollowsDetectorCompaction(t *testing.T) {
	ctx := context.Background()
	_, set, _ := capitalWorkload() // rule set only
	g := graph.New(64, 64)
	au := g.AddNode("country", graph.Attrs{"val": "AU"})
	g.MustAddEdge(au, g.AddNode("city", graph.Attrs{"val": "Canberra"}), "capital")
	for i := 0; i < 20; i++ {
		g.MustAddEdge(au, g.AddNode("city", graph.Attrs{"val": fmt.Sprintf("c%d", i)}), "twin")
	}
	sess := mustOpen(t, g)
	prep, err := sess.Prepare(set)
	if err != nil {
		t.Fatal(err)
	}
	det := sess.Incremental(set)
	const batches = 30
	for i := 0; i < batches; i++ {
		det.Apply(incremental.AddNode{Label: "city", Attrs: graph.Attrs{"val": "X"}})
		if _, err := prep.Detect(ctx, validate.Options{Engine: validate.EngineSequential}); err != nil {
			t.Fatal(err)
		}
	}
	// Freezes may grow only with compactions (amortized), never once per
	// post-compaction Detect round.
	if builds := g.SnapshotBuilds(); builds-1 > batches/4 {
		t.Fatalf("%d snapshot builds over %d detector batches — session decoupled from the compacted overlay", builds, batches)
	}
	if det.Len() != 0 {
		t.Fatalf("disconnected inserts created %d violations, want 0", det.Len())
	}
}

// TestInterleavedSessionAndDetectorApplies pins the symmetric coupling:
// when Session.Apply and a shared detector's Apply interleave across
// session-side compactions, each side must recover onto (and publish) a
// shared view rather than desyncing the other once per batch — freezes
// grow only with compactions, and the detector's report stays correct.
func TestInterleavedSessionAndDetectorApplies(t *testing.T) {
	_, set, _ := capitalWorkload() // rule set only
	g := graph.New(64, 64)
	au := g.AddNode("country", graph.Attrs{"val": "AU"})
	g.MustAddEdge(au, g.AddNode("city", graph.Attrs{"val": "Canberra"}), "capital")
	for i := 0; i < 20; i++ {
		g.MustAddEdge(au, g.AddNode("city", graph.Attrs{"val": fmt.Sprintf("c%d", i)}), "twin")
	}
	sess := mustOpen(t, g)
	det := sess.Incremental(set)
	const rounds = 20
	for i := 0; i < rounds; i++ {
		sess.Apply(incremental.AddNode{Label: "city", Attrs: graph.Attrs{"val": "S"}})
		det.Apply(incremental.AddNode{Label: "city", Attrs: graph.Attrs{"val": "D"}})
	}
	if builds := g.SnapshotBuilds(); builds-1 > rounds/2 {
		t.Fatalf("%d snapshot builds over %d interleaved rounds — the two Apply paths are desyncing each other", builds, rounds)
	}
	// Break and repair through alternating sides; the detector must track.
	ids := sess.Apply(incremental.AddNode{Label: "city", Attrs: graph.Attrs{"val": "Melbourne"}})
	det.Apply(incremental.AddEdge{From: au, To: ids[0], Label: "capital"})
	if det.Len() != 2 {
		t.Fatalf("detector missed the interleaved break: %d violations, want 2", det.Len())
	}
	det.Apply(incremental.SetAttr{Node: ids[0], Attr: "val", Value: "Canberra"})
	if det.Len() != 0 {
		t.Fatalf("detector missed the repair: %d violations, want 0", det.Len())
	}
}
