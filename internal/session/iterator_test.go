// Iterator-API coverage of the fused streaming pipeline: ranging
// Prepared.Violations must deliver exactly Detect's set (per engine, and
// under seeded fault plans), and abandoning the range — break at the
// first element, break mid-stream, or cancelling the context while
// producers are blocked on full lanes — must unwind the whole pipeline
// without leaking a goroutine or calling yield again.
package session_test

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"gfd/internal/fault"
	"gfd/internal/validate"
)

// waitGoroutines polls until the goroutine count returns to the baseline,
// failing the test if a pipeline goroutine (worker, forwarder, or engine)
// outlives its iterator.
func waitGoroutines(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak: %d before, %d after", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// streamEngines: every engine the session facade routes through the
// pull-based pipeline.
var streamEngines = []validate.Engine{
	validate.EngineSequential,
	validate.EngineReplicated,
	validate.EngineFragmented,
	validate.EngineGCFD,
	validate.EngineBigDansing,
}

// TestViolationsMatchesDetect: ranging the iterator to completion yields
// Detect's violation set element-for-element (sorted for comparison — the
// stream is delivery-ordered), across engines and seeds, including with
// single-slot lanes where every producer emission blocks on the consumer.
func TestViolationsMatchesDetect(t *testing.T) {
	ctx := context.Background()
	for _, seed := range []int64{5, 17} {
		g, set := minedWorkload(t, seed)
		prep, err := mustOpen(t, g).Prepare(set)
		if err != nil {
			t.Fatal(err)
		}
		for _, engine := range streamEngines {
			for _, buffer := range []int{0, 1} {
				opt := validate.Options{Engine: engine, N: 3, StreamBuffer: buffer}
				want, err := prep.Detect(ctx, opt)
				if err != nil {
					t.Fatal(err)
				}
				var got validate.Report
				for v, err := range prep.Violations(ctx, opt) {
					if err != nil {
						t.Fatalf("seed %d %v buf %d: iterator error: %v", seed, engine, buffer, err)
					}
					got = append(got, v)
				}
				got.Sort()
				if !got.Equal(want.Violations) {
					t.Errorf("seed %d %v buf %d: iterator delivered %d violations, Detect %d",
						seed, engine, buffer, len(got), len(want.Violations))
				}
			}
		}
	}
}

// TestViolationsUnderFaults: the streamed set under seed-derived
// recoverable fault plans still equals the fault-free report — retried
// and reassigned units never double-report into the lanes — for both
// parallel engines, under the race detector via the chaos CI job.
func TestViolationsUnderFaults(t *testing.T) {
	ctx := context.Background()
	prep, base := chaosWorkload(t)
	disBase, err := prep.Detect(ctx, validate.Options{Engine: validate.EngineFragmented, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	for seed := int64(1); seed <= 3; seed++ {
		for _, c := range []struct {
			engine validate.Engine
			want   validate.Report
			plan   *fault.Plan
		}{
			{validate.EngineReplicated, base.Violations, fault.FromSeed(seed, 4, base.Units)},
			{validate.EngineFragmented, disBase.Violations, fault.FromSeed(seed+1000, 4, disBase.Units)},
		} {
			var got validate.Report
			opt := validate.Options{Engine: c.engine, N: 4, Inject: c.plan}
			for v, err := range prep.Violations(ctx, opt) {
				if err != nil {
					t.Fatalf("%v %v: iterator error: %v", c.engine, c.plan, err)
				}
				got = append(got, v)
			}
			got.Sort()
			if !got.Equal(c.want) {
				t.Fatalf("%v %v: streamed set diverged from fault-free Detect (%d vs %d)",
					c.engine, c.plan, len(got), len(c.want))
			}
		}
	}
}

// TestViolationsBreakAtFirst: breaking out of the range after the first
// element stops detection for every engine — yield is never re-entered,
// no error materializes, and the workers, forwarders, and engine
// goroutine all unwind. Single-slot lanes make the abandonment maximally
// hostile: producers are likely mid-send when the break lands.
func TestViolationsBreakAtFirst(t *testing.T) {
	ctx := context.Background()
	g, set, _ := capitalWorkload() // deterministic: exactly 2 violations
	prep, err := mustOpen(t, g).Prepare(set)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	for _, engine := range streamEngines {
		opt := validate.Options{Engine: engine, N: 3, StreamBuffer: 1}
		if full, err := prep.Detect(ctx, opt); err != nil || len(full.Violations) == 0 {
			// Some engines see nothing here (GCFD's rule conversion drops
			// the capital rule); break-at-first needs a first.
			continue
		}
		seen := 0
		for _, verr := range prep.Violations(ctx, opt) {
			if verr != nil {
				t.Fatalf("%v: iterator error: %v", engine, verr)
			}
			seen++
			break
		}
		if seen != 1 {
			t.Errorf("%v: saw %d violations after breaking at the first", engine, seen)
		}
	}
	waitGoroutines(t, before)
}

// TestViolationsBreakMidStream: a consumer that walks partway into a
// dense stream and breaks gets exactly the prefix it asked for; the
// abandoned remainder — including whatever the workers had in flight —
// is discarded without error or leak.
func TestViolationsBreakMidStream(t *testing.T) {
	ctx := context.Background()
	prep, base := chaosWorkload(t)
	stop := len(base.Violations) / 2
	if stop < 2 {
		t.Fatalf("workload too sparse for a mid-stream break: %d violations", len(base.Violations))
	}
	before := runtime.NumGoroutine()
	seen := 0
	for _, err := range prep.Violations(ctx, validate.Options{Engine: validate.EngineReplicated, N: 4, StreamBuffer: 1}) {
		if err != nil {
			t.Fatalf("iterator error before the break: %v", err)
		}
		if seen++; seen >= stop {
			break
		}
	}
	if seen != stop {
		t.Errorf("saw %d violations, wanted to stop at %d", seen, stop)
	}
	waitGoroutines(t, before)
}

// TestViolationsCancelWhileBlocked: cancelling the caller's context while
// producers are wedged on full single-slot lanes (the consumer stalls
// after one element) unblocks them, and the iterator — drained politely,
// never broken — reports the cancellation as its final element.
func TestViolationsCancelWhileBlocked(t *testing.T) {
	prep, base := chaosWorkload(t)
	if len(base.Violations) < 8 {
		t.Fatalf("workload too sparse to wedge the lanes: %d violations", len(base.Violations))
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var finalErr error
	seen := 0
	for v, err := range prep.Violations(ctx, validate.Options{Engine: validate.EngineReplicated, N: 4, StreamBuffer: 1}) {
		if err != nil {
			finalErr = err
			continue
		}
		_ = v
		if seen++; seen == 1 {
			// Give every worker time to fill its one-slot lane and block,
			// then cancel out from under them.
			time.Sleep(50 * time.Millisecond)
			cancel()
		}
	}
	if !errors.Is(finalErr, context.Canceled) {
		t.Fatalf("final error = %v, want context.Canceled", finalErr)
	}
	waitGoroutines(t, before)
}

// TestViolationsPartialError: an unrecoverable fault plan surfaces
// through the iterator as a trailing ErrPartial — after every violation
// the surviving workers delivered — and ViolationsResult's out parameter
// carries the census, so a streaming consumer gets the same honest
// failure semantics as Detect.
func TestViolationsPartialError(t *testing.T) {
	g, set := minedWorkload(t, 7)
	prep, err := mustOpen(t, g).Prepare(set)
	if err != nil {
		t.Fatal(err)
	}
	plan := fault.NewPlan(9).KillWorker(0, 0).KillWorker(1, 0)
	var res validate.Result
	var finalErr error
	for _, err := range prep.ViolationsResult(context.Background(),
		validate.Options{Engine: validate.EngineReplicated, N: 2, Inject: plan}, &res) {
		if err != nil {
			if finalErr != nil {
				t.Fatalf("error yielded twice: %v then %v", finalErr, err)
			}
			finalErr = err
		}
	}
	if !errors.Is(finalErr, validate.ErrPartial) {
		t.Fatalf("final error = %v, want ErrPartial", finalErr)
	}
	c := res.Completeness
	if c.Complete() || c.WorkerDeaths != 2 {
		t.Fatalf("census inconsistent with two worker deaths: %+v", c)
	}
}

// TestViolationsDistErrorBeforeFirstEmission: the distributed engine
// failing before anything is emitted — here a manifest that does not
// exist, the same shape as a spawn refusal or a fleet that never
// handshakes — must surface through the iterator as exactly one yielded
// error, after which the pipeline (engine goroutine, lanes, forwarders)
// is fully unwound. This is the PipeSink early-shutdown path the dist
// violation-return route reuses.
func TestViolationsDistErrorBeforeFirstEmission(t *testing.T) {
	g, set := minedWorkload(t, 5)
	prep, err := mustOpen(t, g).Prepare(set)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	opt := validate.Options{
		Engine: validate.EngineDistributed,
		Dist:   &validate.DistOptions{ManifestPath: t.TempDir() + "/absent.manifest"},
	}
	var finalErr error
	n := 0
	for v, err := range prep.Violations(context.Background(), opt) {
		if err != nil {
			if finalErr != nil {
				t.Fatalf("error yielded twice: %v then %v", finalErr, err)
			}
			finalErr = err
			continue
		}
		n++
		_ = v
	}
	if finalErr == nil {
		t.Fatal("missing manifest produced no error")
	}
	if n != 0 {
		t.Fatalf("erroring engine still delivered %d violations", n)
	}
	waitGoroutines(t, before)
}
