// Package session implements the prepared-session lifecycle that unifies
// every detection engine behind one compiled-artifact cache — the
// prepared-statement idiom applied to GFD validation.
//
// The paper's engines (detVio, repVal, disVal — Theorems 10/11) and the
// Exp-5 baselines all share one lifecycle: freeze the graph, lower the
// rules onto the frozen symbol table, enumerate, check. A Session owns
// the graph side of that lifecycle and a Prepared owns the rule side:
//
//	sess := session.New(g)
//	prep, _ := sess.Prepare(set) // freeze + lower, once
//	res, _ := prep.Detect(ctx, validate.Options{Engine: validate.EngineReplicated, N: 16})
//	... // more Detect / Stream calls: no freeze, no re-lowering
//
// Freeze, implication-based workload reduction, multi-query grouping,
// pattern compilation and literal-program lowering are all paid once per
// (graph version, rule set), no matter how many Detect rounds, engines,
// and option variants run — the prerequisite for serving heavy validation
// traffic without an O(|V|+|E|) prefix per request. Mutating the graph
// invalidates the prepared state; the next Detect re-freezes and
// re-lowers automatically (and exactly once per new version).
//
// Detect and Stream are safe for concurrent use while the graph is
// unmutated, like the engines themselves. Mutation concurrent with
// detection is not safe — the same contract as Graph.Freeze.
package session

import (
	"context"
	"errors"
	"sync"
	"time"

	"gfd/internal/baseline"
	"gfd/internal/core"
	"gfd/internal/fragment"
	"gfd/internal/graph"
	"gfd/internal/incremental"
	"gfd/internal/validate"
)

// Session owns a graph and the caches keyed by its mutation version:
// fragmentations for the fragmented engine and the attribute index shared
// by incremental detectors. Prepared rule sets hang off it via Prepare.
type Session struct {
	g *graph.Graph

	mu           sync.Mutex
	frags        map[int]*fragment.Fragmentation // keyed by fragment count
	fragsVersion uint64
	inc          *incremental.Detector // last detector, for AttrIndex reuse
}

// New opens a session on g. The graph stays owned by the caller: build
// and mutate it directly, and let the session pay the compilation costs
// once per version.
func New(g *graph.Graph) *Session {
	if g == nil {
		panic("session: nil graph")
	}
	return &Session{g: g}
}

// Graph returns the session's graph.
func (s *Session) Graph() *graph.Graph { return s.g }

// Snapshot returns the frozen view of the session's graph at its current
// version (building it at most once per version).
func (s *Session) Snapshot() *graph.Snapshot { return s.g.Freeze() }

// Prepare compiles set against the session's graph: the graph is frozen
// and every rule's pattern and X → Y literals are lowered onto the frozen
// symbol table. The workload reduction and multi-query grouping the
// parallel engines use are derived on their first Detect and cached per
// option variant (eagerly deriving them here would tax sequential-only
// callers with reasoning work that engine never reads — use WarmEngine to
// front-load a specific variant). The returned Prepared serves any number
// of Detect / Stream calls and re-prepares itself (once per new graph
// version) when the graph mutates.
func (s *Session) Prepare(set *core.Set) (*Prepared, error) {
	if set == nil {
		return nil, errors.New("session: nil rule set")
	}
	p := &Prepared{sess: s, set: set}
	p.refresh()
	return p, nil
}

// Fragmentation returns the n-way hash fragmentation of the session's
// graph, cached per (graph version, n) so repeated fragmented-engine
// rounds stop re-partitioning.
func (s *Session) Fragmentation(n int) *fragment.Fragmentation {
	if n < 1 {
		n = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if v := s.g.Version(); s.frags == nil || s.fragsVersion != v {
		s.frags = make(map[int]*fragment.Fragmentation, 2)
		s.fragsVersion = v
	}
	if f := s.frags[n]; f != nil {
		return f
	}
	f := fragment.Partition(s.g, n, fragment.Hash)
	s.frags[n] = f
	return f
}

// Incremental builds an incremental detector maintaining Vio(Σ, G) over
// the session's graph. The session reuses one graph.AttrIndex across
// detectors as long as every mutation flows through a detector's Apply
// (which keeps the index in lockstep with the graph); a direct graph
// mutation since the last detector forces a rebuild. Updates applied
// through the detector bump the graph version, so the session's prepared
// rule sets re-freeze on their next Detect — one shared mutation
// lifecycle across the batch and incremental paths.
func (s *Session) Incremental(set *core.Set) *incremental.Detector {
	s.mu.Lock()
	defer s.mu.Unlock()
	var ix *graph.AttrIndex
	if s.inc != nil && s.inc.Synced() {
		ix = s.inc.AttrIndex()
	} else {
		ix = graph.NewAttrIndex(s.g)
	}
	d := incremental.NewWithIndex(s.g, set, ix)
	s.inc = d
	return d
}

// Prepared is a rule set compiled against a session's graph: the
// prepared-statement half of the API. It is valid across graph mutations
// — staleness is detected by version and repaired by re-preparing
// exactly once per new version.
type Prepared struct {
	sess *Session
	set  *core.Set

	mu      sync.Mutex
	version uint64
	bundle  *validate.Bundle

	// Baseline artifacts, lazily derived and cached: the GCFD conversion
	// depends only on the rule set; the relational encoding is
	// version-bound and dropped on re-prepare.
	gcfds       []*baseline.GCFD
	gcfdDropped int
	rel         *baseline.Relational
}

// Set returns the prepared rule set.
func (p *Prepared) Set() *core.Set { return p.set }

// Session returns the owning session.
func (p *Prepared) Session() *Session { return p.sess }

// Bundle returns the compiled execution bundle for the graph's current
// version, re-preparing it if the graph has mutated since the last call.
func (p *Prepared) Bundle() *validate.Bundle { return p.refresh() }

func (p *Prepared) refresh() *validate.Bundle {
	p.mu.Lock()
	defer p.mu.Unlock()
	if v := p.sess.g.Version(); p.bundle == nil || p.version != v {
		p.bundle = validate.NewBundle(p.sess.g, p.set)
		p.version = v
		p.rel = nil // the relational encoding snapshots the old version
	}
	return p.bundle
}

// Detect runs the engine selected by opt.Engine (EngineAuto resolves to
// EngineReplicated) and returns its result with the violation set
// collected and canonically sorted. Cancellation is honored by every
// engine: on context expiry the partial result is returned along with the
// context's error.
func (p *Prepared) Detect(ctx context.Context, opt validate.Options) (*validate.Result, error) {
	return p.run(ctx, opt, nil)
}

// Stream is Detect without materializing the report: yield receives each
// violation as it is found (across engines and workers; emissions are
// serialized), and detection stops early when it returns false. The
// result instrumentation is discarded; use Detect when it is needed.
func (p *Prepared) Stream(ctx context.Context, opt validate.Options, yield func(validate.Violation) bool) error {
	if yield == nil {
		return errors.New("session: nil stream yield")
	}
	_, err := p.run(ctx, opt, yield)
	return err
}

func (p *Prepared) run(ctx context.Context, opt validate.Options, yield func(validate.Violation) bool) (*validate.Result, error) {
	b := p.refresh()
	switch opt.Engine.Resolve() {
	case validate.EngineSequential:
		return timed(p.set.Len(), yield, func(emit func(validate.Violation) bool) error {
			return validate.DetVioB(ctx, b, emit)
		})
	case validate.EngineReplicated:
		return validate.RepValB(ctx, b, opt, yield)
	case validate.EngineFragmented:
		frag := opt.Frag
		if frag == nil {
			frag = p.sess.Fragmentation(opt.Normalized().N)
		}
		return validate.DisValB(ctx, b, frag, opt, yield)
	case validate.EngineGCFD:
		rules, _ := p.GCFDRules()
		return timed(len(rules), yield, func(emit func(validate.Violation) bool) error {
			return baseline.DetectB(ctx, b, rules, emit)
		})
	case validate.EngineBigDansing:
		rel := p.relational(b)
		n := opt.Normalized().N
		return timed(p.set.Len(), yield, func(emit func(validate.Violation) bool) error {
			return baseline.DetectJoinsB(ctx, b, rel, n, emit)
		})
	}
	return nil, errors.New("session: unknown engine")
}

// timed wraps the single-sink engines (sequential and the baselines) in
// the Result shape the parallel engines return: wall time, rule count,
// and — when not streaming — the collected, sorted violation set. When
// streaming, emissions from concurrent workers (BigDansing) are
// serialized onto yield.
func timed(rules int, yield func(validate.Violation) bool, run func(func(validate.Violation) bool) error) (*validate.Result, error) {
	res := &validate.Result{Rules: rules}
	var mu sync.Mutex
	emit := func(v validate.Violation) bool {
		mu.Lock()
		defer mu.Unlock()
		if yield != nil {
			return yield(v)
		}
		res.Violations = append(res.Violations, v)
		return true
	}
	start := time.Now()
	err := run(emit)
	res.Wall = time.Since(start)
	res.Violations.Sort()
	return res, err
}

// WarmEngine pre-derives every artifact a Detect with these options
// would otherwise build lazily on first use — the reduction/grouping
// variant for the parallel engines, the fragmentation for the fragmented
// engine, the GCFD rule conversion, the BigDansing relational encoding —
// so a timed Detect measures evaluation only.
func (p *Prepared) WarmEngine(opt validate.Options) {
	b := p.refresh()
	switch opt.Engine.Resolve() {
	case validate.EngineReplicated:
		b.Warm(opt)
	case validate.EngineFragmented:
		b.Warm(opt)
		if opt.Frag == nil {
			p.sess.Fragmentation(opt.Normalized().N)
		}
	case validate.EngineGCFD:
		p.GCFDRules()
	case validate.EngineBigDansing:
		p.relational(b)
	}
}

// GCFDRules returns the path-expressible conversion of the prepared set
// (cached — it depends only on the rules) plus how many rules were
// dropped as inexpressible, the quantity Exp-5's recall comparison turns
// on.
func (p *Prepared) GCFDRules() ([]*baseline.GCFD, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.gcfds == nil && p.gcfdDropped == 0 {
		p.gcfds, p.gcfdDropped = baseline.ConvertSet(p.set)
	}
	return p.gcfds, p.gcfdDropped
}

// relational returns the BigDansing relational encoding of the graph,
// cached per graph version.
func (p *Prepared) relational(b *validate.Bundle) *baseline.Relational {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rel == nil {
		p.rel = baseline.Encode(b.Graph())
	}
	return p.rel
}
