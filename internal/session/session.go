// Package session implements the prepared-session lifecycle that unifies
// every detection engine behind one compiled-artifact cache — the
// prepared-statement idiom applied to GFD validation.
//
// The paper's engines (detVio, repVal, disVal — Theorems 10/11) and the
// Exp-5 baselines all share one lifecycle: freeze the graph, lower the
// rules onto the frozen symbol table, enumerate, check. A Session owns
// the graph side of that lifecycle and a Prepared owns the rule side:
//
//	sess, _ := session.New(g)
//	prep, _ := sess.Prepare(set) // freeze + lower, once
//	res, _ := prep.Detect(ctx, validate.Options{Engine: validate.EngineReplicated, N: 16})
//	... // more Detect / Stream calls: no freeze, no re-lowering
//
// Freeze, implication-based workload reduction, multi-query grouping,
// pattern compilation and literal-program lowering are all paid once per
// (graph version, rule set), no matter how many Detect rounds, engines,
// and option variants run — the prerequisite for serving heavy validation
// traffic without an O(|V|+|E|) prefix per request. Mutating the graph
// directly invalidates the prepared state; the next Detect re-freezes and
// re-lowers automatically (and exactly once per new version).
//
// Small mutations need not re-freeze at all: updates routed through
// Session.Apply (or an incremental detector from Session.Incremental) are
// folded into a maintained graph.Overlay — the base snapshot plus
// localized CSR patches — and the next Detect runs against the patched
// view, paying only for the touched region. Once the accumulated delta
// exceeds a fraction of the base size, the session compacts: one fresh
// freeze absorbs the patches, amortizing O(|V|+|E|) over Ω(|G|) updates.
//
// Detect and Stream are safe for concurrent use while the graph is
// unmutated, like the engines themselves. Mutation concurrent with
// detection is not safe — the same contract as Graph.Freeze.
package session

import (
	"context"
	"errors"
	"iter"
	"sync"
	"time"

	"gfd/internal/baseline"
	"gfd/internal/core"
	"gfd/internal/dist"
	"gfd/internal/fragment"
	"gfd/internal/graph"
	"gfd/internal/incremental"
	"gfd/internal/validate"
)

// Session owns a graph and the caches keyed by its mutation version:
// fragmentations for the fragmented engine, and the delta overlay shared
// by incremental detectors and handed to prepared bundles after small
// mutations. Prepared rule sets hang off it via Prepare.
type Session struct {
	g *graph.Graph

	mu           sync.Mutex
	frags        map[int]*fragment.Fragmentation // keyed by fragment count
	fragsVersion uint64
	overlay      *graph.Overlay // live delta view; nil when no update flowed through the session
}

// ErrNilGraph is returned by New when opened on a nil graph — a typed
// error instead of the panic it used to be, so servers embedding the
// session API can reject a bad request without a recover.
var ErrNilGraph = errors.New("session: nil graph")

// New opens a session on g. The graph stays owned by the caller: build
// and mutate it directly, and let the session pay the compilation costs
// once per version. A nil graph returns ErrNilGraph.
func New(g *graph.Graph) (*Session, error) {
	if g == nil {
		return nil, ErrNilGraph
	}
	return &Session{g: g}, nil
}

// Graph returns the session's graph.
func (s *Session) Graph() *graph.Graph { return s.g }

// Snapshot returns the frozen view of the session's graph at its current
// version (building it at most once per version).
func (s *Session) Snapshot() *graph.Snapshot { return s.g.Freeze() }

// Prepare compiles set against the session's graph: the graph is frozen
// and every rule's pattern and X → Y literals are lowered onto the frozen
// symbol table. The workload reduction and multi-query grouping the
// parallel engines use are derived on their first Detect and cached per
// option variant (eagerly deriving them here would tax sequential-only
// callers with reasoning work that engine never reads — use WarmEngine to
// front-load a specific variant). The returned Prepared serves any number
// of Detect / Stream calls and re-prepares itself (once per new graph
// version) when the graph mutates.
func (s *Session) Prepare(set *core.Set) (*Prepared, error) {
	if set == nil {
		return nil, errors.New("session: nil rule set")
	}
	p := &Prepared{sess: s, set: set}
	p.refresh()
	return p, nil
}

// Fragmentation returns the n-way hash fragmentation of the session's
// graph, cached per (graph version, n) so repeated fragmented-engine
// rounds stop re-partitioning.
func (s *Session) Fragmentation(n int) *fragment.Fragmentation {
	if n < 1 {
		n = 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if v := s.g.Version(); s.frags == nil || s.fragsVersion != v {
		s.frags = make(map[int]*fragment.Fragmentation, 2)
		s.fragsVersion = v
	}
	if f := s.frags[n]; f != nil {
		return f
	}
	f := fragment.Partition(s.g, n, fragment.Hash)
	s.frags[n] = f
	return f
}

// Incremental builds an incremental detector maintaining Vio(Σ, G) over
// the session's graph. The session shares one graph.Overlay across
// detectors and its own Apply as long as every mutation flows through one
// of them (each keeps the overlay in lockstep with the graph); a direct
// graph mutation since then forces a fresh view. Updates applied through
// the detector advance the shared overlay, so the session's prepared rule
// sets follow along on their next Detect without re-freezing — one shared
// mutation lifecycle across the batch and incremental paths.
func (s *Session) Incremental(set *core.Set) *incremental.Detector {
	s.mu.Lock()
	defer s.mu.Unlock()
	d := incremental.NewOnOverlay(s.liveOverlayLocked(), set)
	// Follow the detector through compactions: adopting its fresh overlay
	// keeps prepared bundles on the no-freeze path; abandoning it would
	// silently re-freeze every post-compaction Detect.
	d.OnCompact(func(ov *graph.Overlay) {
		s.mu.Lock()
		s.overlay = ov
		s.mu.Unlock()
	})
	return d
}

// Apply performs updates on the session's graph through the maintained
// overlay and returns the IDs of inserted nodes in update order. Unlike a
// direct graph mutation — which invalidates every prepared bundle into a
// full re-freeze — updates applied here keep the compiled path warm: the
// next Detect runs against the patched overlay, paying only for the
// touched region. Once the accumulated delta exceeds the compaction
// fraction (graph.CompactFraction), Apply compacts eagerly: the patches
// are absorbed into a fresh snapshot before returning — one amortized
// freeze per Ω(|G|) updates, paid by the batch that crosses the
// threshold — and a clean overlay starts.
func (s *Session) Apply(ups ...incremental.Update) []graph.NodeID {
	s.mu.Lock()
	defer s.mu.Unlock()
	ov := s.liveOverlayLocked()
	ids := incremental.ApplyTo(ov, ups...)
	if ov.NeedsCompaction() {
		// Compact eagerly into a fresh overlay (one freeze, the same
		// amortized cost as deferring it to the next Detect) so the
		// session always holds a live view: detectors sharing the old
		// overlay recover and re-publish through OnCompact, instead of
		// the two sides desyncing each other once per batch.
		s.overlay = graph.NewOverlay(s.g)
	}
	return ids
}

// liveOverlayLocked returns the session's overlay, starting a fresh one
// over the current graph version when none is live or a mutation bypassed
// it. Callers hold s.mu.
func (s *Session) liveOverlayLocked() *graph.Overlay {
	if s.overlay == nil || !s.overlay.Synced() {
		s.overlay = graph.NewOverlay(s.g)
	}
	return s.overlay
}

// topology resolves the compiled view prepared bundles should run
// against: the live overlay while it is synced with the graph, else a
// frozen snapshot (cached per version).
func (s *Session) topology() graph.Topology {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.overlay != nil {
		if s.overlay.Synced() {
			return s.overlay
		}
		s.overlay = nil
	}
	return s.g.Freeze()
}

// Prepared is a rule set compiled against a session's graph: the
// prepared-statement half of the API. It is valid across graph mutations
// — staleness is detected by version and repaired by re-preparing
// exactly once per new version.
type Prepared struct {
	sess *Session
	set  *core.Set

	mu      sync.Mutex
	version uint64
	bundle  *validate.Bundle

	// Baseline artifacts, lazily derived and cached: the GCFD conversion
	// depends only on the rule set; the relational encoding is
	// version-bound and dropped on re-prepare.
	gcfds       []*baseline.GCFD
	gcfdDropped int
	rel         *baseline.Relational
}

// Set returns the prepared rule set.
func (p *Prepared) Set() *core.Set { return p.set }

// Session returns the owning session.
func (p *Prepared) Session() *Session { return p.sess }

// Bundle returns the compiled execution bundle for the graph's current
// version, re-preparing it if the graph has mutated since the last call.
func (p *Prepared) Bundle() *validate.Bundle { return p.refresh() }

func (p *Prepared) refresh() *validate.Bundle {
	p.mu.Lock()
	defer p.mu.Unlock()
	if v := p.sess.g.Version(); p.bundle == nil || p.version != v {
		// The session hands back the live overlay after small mutations
		// (Session.Apply / detector Apply), so re-preparing costs only the
		// rule-side rebinding — no freeze; a full snapshot is built only
		// when mutations bypassed the overlay or the delta was compacted.
		// The superseded bundle donates its graph-independent caches
		// (reduction, grouping variants).
		p.bundle = validate.NewBundleOver(p.sess.g, p.sess.topology(), p.set, p.bundle)
		p.version = v
		p.rel = nil // the relational encoding snapshots the old version
	}
	return p.bundle
}

// Detect runs the engine selected by opt.Engine (EngineAuto resolves to
// EngineReplicated) and returns its result with the violation set
// collected and canonically sorted. Cancellation is honored by every
// engine: on context expiry the partial result is returned along with the
// context's error. It is the collect-mode wrapper over the same fused
// pipeline Violations exposes — a nil sink makes every engine gather into
// per-worker shards and sort once at the end.
func (p *Prepared) Detect(ctx context.Context, opt validate.Options) (*validate.Result, error) {
	return p.run(ctx, opt, nil)
}

// Violations runs detection as a pull-based stream: the returned iterator
// yields each violation as the engine finds it, in delivery order
// (unsorted — sort order is a property of the collected report, not the
// stream). The pipeline is fused end to end: match enumeration → compiled
// literal check → emission, with per-worker bounded lanes
// (Options.StreamBuffer) applying backpressure to producers instead of
// serializing them behind a mutex.
//
// Breaking out of the range stops detection: the break cancels the run's
// context, which reaches every worker's candidate enumeration at its next
// strided checkpoint — mid-class, not at the next unit boundary — and the
// workers, forwarders, and the engine goroutine all unwind before the
// iterator returns; abandoning early never leaks goroutines or wedges a
// worker on a full lane. A non-nil error is yielded at most once, as the
// final element: the caller's context expiring, or a partial run
// (errors.Is validate.ErrPartial) whose failed units may have withheld
// violations. An early break discards any error the teardown itself
// produced, exactly as a callback returning false always has.
//
// Violations observed before a break are exactly a prefix-closed subset
// of the full run's set for the same options: retried units never
// double-report (the scheduler's skip counts hold across asynchronous
// emission), so ranging to completion yields Detect's violation set
// element-for-element, just unsorted.
func (p *Prepared) Violations(ctx context.Context, opt validate.Options) iter.Seq2[validate.Violation, error] {
	return p.ViolationsResult(ctx, opt, nil)
}

// ViolationsResult is Violations with the run's instrumentation kept:
// after the iterator finishes (ranged to completion or abandoned), out —
// when non-nil — holds the engine's Result (timings, census, modeled
// comm; Result.Violations stays empty, the stream carried them). On an
// early break Result.Completeness reports how far detection actually got.
func (p *Prepared) ViolationsResult(ctx context.Context, opt validate.Options, out *validate.Result) iter.Seq2[validate.Violation, error] {
	return func(yield func(validate.Violation, error) bool) {
		runCtx, cancel := context.WithCancel(ctx)
		defer cancel()
		nopt := opt.Normalized()
		lanes := nopt.N
		if nopt.Engine.Resolve() == validate.EngineFragmented {
			// The fragmented engine clamps its worker count to the
			// fragmentation's; size the lanes off the same number.
			frag := nopt.Frag
			if frag == nil {
				frag = p.sess.Fragmentation(nopt.N)
			}
			lanes = frag.N
		}
		pipe := validate.NewPipeSink(runCtx, lanes, nopt.StreamBuffer)
		type outcome struct {
			res *validate.Result
			err error
		}
		done := make(chan outcome, 1)
		go func() {
			res, err := p.run(runCtx, opt, pipe)
			pipe.Close()
			done <- outcome{res, err}
		}()
		// Drain the merged stream to completion even after the consumer
		// breaks: the engine goroutine must finish (it owns the Result) and
		// yield must never be called again once it returned false.
		stopped := false
		for v := range pipe.Out() {
			if stopped {
				continue
			}
			if !yield(v, nil) {
				stopped = true
				cancel()
			}
		}
		o := <-done
		if out != nil && o.res != nil {
			*out = *o.res
		}
		if o.err != nil && !stopped {
			yield(validate.Violation{}, o.err)
		}
	}
}

// Stream is the callback form of Violations: yield receives each
// violation as it is found and detection stops early when it returns
// false. It is a thin wrapper over the same pull-based pipeline. The
// result instrumentation is discarded; use Detect or ViolationsResult
// when it is needed.
//
// Deprecated: range over Violations instead — same pipeline, same
// early-stop semantics, without inverting control.
func (p *Prepared) Stream(ctx context.Context, opt validate.Options, yield func(validate.Violation) bool) error {
	if yield == nil {
		return errors.New("session: nil stream yield")
	}
	for v, err := range p.Violations(ctx, opt) {
		if err != nil {
			return err
		}
		if !yield(v) {
			return nil
		}
	}
	return nil
}

func (p *Prepared) run(ctx context.Context, opt validate.Options, sink validate.Sink) (*validate.Result, error) {
	b := p.refresh()
	switch opt.Engine.Resolve() {
	case validate.EngineSequential:
		return single(p.set.Len(), 1, sink, func(s validate.Sink) error {
			return validate.DetVioB(ctx, b, s)
		})
	case validate.EngineReplicated:
		return validate.RepValB(ctx, b, opt, sink)
	case validate.EngineFragmented:
		frag := opt.Frag
		if frag == nil {
			frag = p.sess.Fragmentation(opt.Normalized().N)
		}
		return validate.DisValB(ctx, b, frag, opt, sink)
	case validate.EngineGCFD:
		rules, _ := p.GCFDRules()
		n := opt.Normalized().N
		return single(len(rules), n, sink, func(s validate.Sink) error {
			return baseline.DetectB(ctx, b, rules, n, s)
		})
	case validate.EngineBigDansing:
		rel := p.relational(b)
		n := opt.Normalized().N
		return single(p.set.Len(), n, sink, func(s validate.Sink) error {
			return baseline.DetectJoinsB(ctx, b, rel, n, s)
		})
	case validate.EngineDistributed:
		return dist.DetectB(ctx, b, opt, sink)
	}
	return nil, errors.New("session: unknown engine")
}

// single wraps the engines that do not build their own Result (sequential
// and the baselines) in the shape the parallel engines return: wall time,
// rule count, and — when no external sink was supplied — the collected,
// sorted violation set, gathered through a CollectSink with one lane per
// engine worker. With an external sink the engines emit straight into it
// over the very same code path; the three modes differ only in the sink.
func single(rules, lanes int, sink validate.Sink, run func(validate.Sink) error) (*validate.Result, error) {
	res := &validate.Result{Rules: rules}
	var collect *validate.CollectSink
	if sink == nil {
		collect = validate.NewCollectSink(lanes)
		sink = collect
	}
	start := time.Now()
	err := run(sink)
	res.Wall = time.Since(start)
	if collect != nil {
		res.Violations = collect.Report()
		res.Violations.Sort()
	}
	return res, err
}

// WarmEngine pre-derives every artifact a Detect with these options
// would otherwise build lazily on first use — the reduction/grouping
// variant for the parallel engines, the fragmentation for the fragmented
// engine, the GCFD rule conversion, the BigDansing relational encoding —
// so a timed Detect measures evaluation only.
func (p *Prepared) WarmEngine(opt validate.Options) {
	b := p.refresh()
	switch opt.Engine.Resolve() {
	case validate.EngineReplicated:
		b.Warm(opt)
	case validate.EngineFragmented:
		b.Warm(opt)
		if opt.Frag == nil {
			p.sess.Fragmentation(opt.Normalized().N)
		}
	case validate.EngineGCFD:
		p.GCFDRules()
	case validate.EngineBigDansing:
		p.relational(b)
	}
}

// GCFDRules returns the path-expressible conversion of the prepared set
// (cached — it depends only on the rules) plus how many rules were
// dropped as inexpressible, the quantity Exp-5's recall comparison turns
// on.
func (p *Prepared) GCFDRules() ([]*baseline.GCFD, int) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.gcfds == nil && p.gcfdDropped == 0 {
		p.gcfds, p.gcfdDropped = baseline.ConvertSet(p.set)
	}
	return p.gcfds, p.gcfdDropped
}

// relational returns the BigDansing relational encoding of the graph,
// cached per graph version.
func (p *Prepared) relational(b *validate.Bundle) *baseline.Relational {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.rel == nil {
		p.rel = baseline.Encode(b.Graph())
	}
	return p.rel
}
