package session_test

import (
	"context"
	"testing"

	"gfd/internal/baseline"
	"gfd/internal/core"
	"gfd/internal/fragment"
	"gfd/internal/gen"
	"gfd/internal/graph"
	"gfd/internal/incremental"
	"gfd/internal/pattern"
	"gfd/internal/session"
	"gfd/internal/validate"
)

// mustOpen opens a session over g, failing the test on error — test
// graphs are constructed, never nil.
func mustOpen(t testing.TB, g *graph.Graph) *session.Session {
	t.Helper()
	sess, err := session.New(g)
	if err != nil {
		t.Fatal(err)
	}
	return sess
}

// minedWorkload builds a noisy random graph plus mined rules, seeded;
// seeds that mine nothing fall through to nearby ones so every caller
// gets a non-empty set deterministically.
func minedWorkload(t *testing.T, seed int64) (*graph.Graph, *core.Set) {
	t.Helper()
	for off := int64(0); off < 5; off++ {
		s := seed + off*101
		g := gen.Synthetic(gen.SyntheticConfig{Nodes: 300, Edges: 700, Skew: 0.5, Seed: s})
		set := gen.MineGFDs(g, gen.MineConfig{NumRules: 5, PatternSize: 4, TwoCompFrac: 0.4, Seed: s + 1})
		if set.Len() == 0 {
			continue
		}
		gen.Inject(g, gen.NoiseConfig{Rate: 0.05, Seed: s + 2})
		return g, set
	}
	t.Fatalf("no rules mined near seed %d", seed)
	return nil, nil
}

// capitalWorkload is the paper's two-capitals example: deterministic
// violations for the small-scale lifecycle tests.
func capitalWorkload() (*graph.Graph, *core.Set, graph.NodeID) {
	q := pattern.New()
	x := q.AddNode("x", "country")
	y := q.AddNode("y", "city")
	z := q.AddNode("z", "city")
	q.AddEdge(x, y, "capital")
	q.AddEdge(x, z, "capital")
	phi := core.MustNew("one_capital", q, nil, []core.Literal{core.VarEq("y", "val", "z", "val")})

	g := graph.New(8, 8)
	au := g.AddNode("country", graph.Attrs{"val": "AU"})
	canberra := g.AddNode("city", graph.Attrs{"val": "Canberra"})
	melbourne := g.AddNode("city", graph.Attrs{"val": "Melbourne"})
	g.MustAddEdge(au, canberra, "capital")
	g.MustAddEdge(au, melbourne, "capital")
	return g, core.MustNewSet(phi), melbourne
}

// TestDetectMatchesFreeFunctions is the differential pin of the session
// API: reused Prepared.Detect results must equal fresh free-function
// calls across random graphs, all engines, and all Options variants —
// and repeating each Detect must return the same set (cached variant
// state does not drift).
func TestDetectMatchesFreeFunctions(t *testing.T) {
	ctx := context.Background()
	for _, seed := range []int64{1, 7, 23} {
		g, set := minedWorkload(t, seed)
		// Mining may have frozen the pre-noise graph; count builds from
		// the session's preparation on.
		base := g.SnapshotBuilds()
		prep, err := mustOpen(t, g).Prepare(set)
		if err != nil {
			t.Fatal(err)
		}

		wantSeq := validate.DetVio(g, set)
		res, err := prep.Detect(ctx, validate.Options{Engine: validate.EngineSequential})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Violations.Equal(wantSeq) {
			t.Errorf("seed %d: sequential Detect diverged from DetVio", seed)
		}

		variants := map[string]validate.Options{
			"default":   {N: 3},
			"random":    {N: 3, RandomAssign: true, Seed: seed},
			"nop":       {N: 3, NoOptimize: true},
			"noreduce":  {N: 3, NoReduce: true},
			"arbitrary": {N: 3, ArbitraryPivot: true},
			"split":     {N: 3, SplitThreshold: 8, NoReduce: true},
			"hist1":     {N: 2, HistogramM: 1},
		}
		for name, opt := range variants {
			repOpt := opt
			repOpt.Engine = validate.EngineReplicated
			want := validate.RepVal(g, set, opt)
			for round := 0; round < 2; round++ {
				got, err := prep.Detect(ctx, repOpt)
				if err != nil {
					t.Fatal(err)
				}
				if !got.Violations.Equal(want.Violations) {
					t.Errorf("seed %d: repVal[%s] round %d diverged (%d vs %d violations)",
						seed, name, round, len(got.Violations), len(want.Violations))
				}
			}

			disOpt := opt
			disOpt.Engine = validate.EngineFragmented
			frag := fragment.Partition(g, max(opt.N, 1), fragment.Hash)
			disOpt.Frag = frag
			wantDis := validate.DisVal(g, frag, set, opt)
			got, err := prep.Detect(ctx, disOpt)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Violations.Equal(wantDis.Violations) {
				t.Errorf("seed %d: disVal[%s] diverged", seed, name)
			}
			// And with the session-cached fragmentation (no explicit Frag):
			// hash partitioning is deterministic, so results agree too.
			disOpt.Frag = nil
			got, err = prep.Detect(ctx, disOpt)
			if err != nil {
				t.Fatal(err)
			}
			if !got.Violations.Equal(wantDis.Violations) {
				t.Errorf("seed %d: disVal[%s] with cached fragmentation diverged", seed, name)
			}
		}

		// The whole battery — session rounds plus every fresh free-function
		// call — shares the graph's single frozen snapshot.
		if builds := g.SnapshotBuilds() - base; builds != 1 {
			t.Errorf("seed %d: %d snapshot builds across battery, want 1", seed, builds)
		}
	}
}

// TestBaselineEnginesMatchBaselinePackage pins EngineGCFD and
// EngineBigDansing dispatch to the baseline package's own entry points.
func TestBaselineEnginesMatchBaselinePackage(t *testing.T) {
	ctx := context.Background()
	g, set := minedWorkload(t, 11)
	prep, err := mustOpen(t, g).Prepare(set)
	if err != nil {
		t.Fatal(err)
	}

	rules, dropped := baseline.ConvertSet(set)
	wantG := baseline.Detect(g, rules)
	gotG, err := prep.Detect(ctx, validate.Options{Engine: validate.EngineGCFD})
	if err != nil {
		t.Fatal(err)
	}
	if !gotG.Violations.Equal(wantG) {
		t.Error("EngineGCFD diverged from baseline.Detect")
	}
	if gotG.Rules != set.Len()-dropped {
		t.Errorf("EngineGCFD rules = %d, want %d expressible", gotG.Rules, set.Len()-dropped)
	}

	wantB := baseline.DetectJoins(g, baseline.Encode(g), set, 4)
	gotB, err := prep.Detect(ctx, validate.Options{Engine: validate.EngineBigDansing, N: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !gotB.Violations.Equal(wantB) {
		t.Error("EngineBigDansing diverged from baseline.DetectJoins")
	}
}

// TestMutationBetweenDetectsRefreezes: a Detect after graph mutation must
// re-prepare (exactly one fresh freeze) and agree with a fresh validation
// of the mutated graph.
func TestMutationBetweenDetectsRefreezes(t *testing.T) {
	ctx := context.Background()
	g, set, melbourne := capitalWorkload()
	prep, err := mustOpen(t, g).Prepare(set)
	if err != nil {
		t.Fatal(err)
	}
	res, err := prep.Detect(ctx, validate.Options{Engine: validate.EngineSequential})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 2 {
		t.Fatalf("pre-mutation violations = %d, want 2", len(res.Violations))
	}
	if builds := g.SnapshotBuilds(); builds != 1 {
		t.Fatalf("builds = %d, want 1", builds)
	}

	// Repair the inconsistency; the prepared state is now stale.
	g.SetAttr(melbourne, "val", "Canberra")
	for round := 0; round < 3; round++ {
		res, err = prep.Detect(ctx, validate.Options{Engine: validate.EngineSequential})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) != 0 {
			t.Fatalf("post-repair round %d: violations = %d, want 0", round, len(res.Violations))
		}
	}
	if !validate.Satisfies(g, set) {
		t.Error("oracle disagrees: graph should satisfy the set")
	}
	// One re-freeze for the new version, not one per round.
	if builds := g.SnapshotBuilds(); builds != 2 {
		t.Errorf("builds = %d after mutation + 3 rounds, want 2", builds)
	}

	// Mutation that introduces new labels/values re-lowers correctly.
	us := g.AddNode("country", graph.Attrs{"val": "US"})
	dc := g.AddNode("city", graph.Attrs{"val": "DC"})
	nyc := g.AddNode("city", graph.Attrs{"val": "NYC"})
	g.MustAddEdge(us, dc, "capital")
	g.MustAddEdge(us, nyc, "capital")
	res, err = prep.Detect(ctx, validate.Options{Engine: validate.EngineReplicated, N: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 2 {
		t.Errorf("post-insert violations = %d, want 2", len(res.Violations))
	}
	if !res.Violations.Equal(validate.DetVio(g, set)) {
		t.Error("post-insert session result diverged from fresh DetVio")
	}
}

// TestStreamMatchesDetect: streaming delivers exactly the violation set
// Detect collects, for each engine.
func TestStreamMatchesDetect(t *testing.T) {
	ctx := context.Background()
	g, set := minedWorkload(t, 5)
	prep, err := mustOpen(t, g).Prepare(set)
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []validate.Engine{
		validate.EngineSequential,
		validate.EngineReplicated,
		validate.EngineFragmented,
		validate.EngineGCFD,
		validate.EngineBigDansing,
	} {
		opt := validate.Options{Engine: engine, N: 3}
		want, err := prep.Detect(ctx, opt)
		if err != nil {
			t.Fatal(err)
		}
		var got validate.Report
		if err := prep.Stream(ctx, opt, func(v validate.Violation) bool {
			got = append(got, v)
			return true
		}); err != nil {
			t.Fatalf("%v: stream error: %v", engine, err)
		}
		if !got.Equal(want.Violations) {
			t.Errorf("%v: stream delivered %d violations, Detect %d", engine, len(got), len(want.Violations))
		}
	}
}

// TestStreamEarlyStop: a yield returning false stops detection without an
// error, for the parallel engine too.
func TestStreamEarlyStop(t *testing.T) {
	ctx := context.Background()
	g, set, _ := capitalWorkload() // deterministic: exactly 2 violations
	prep, err := mustOpen(t, g).Prepare(set)
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []validate.Engine{validate.EngineSequential, validate.EngineReplicated} {
		seen := 0
		if err := prep.Stream(ctx, validate.Options{Engine: engine, N: 3}, func(validate.Violation) bool {
			seen++
			return false
		}); err != nil {
			t.Fatalf("%v: early stop returned error %v", engine, err)
		}
		if seen != 1 {
			t.Errorf("%v: yield called %d times after returning false", engine, seen)
		}
	}
}

// TestPrepareNilSet: the one Prepare error path.
func TestPrepareNilSet(t *testing.T) {
	g, _, _ := capitalWorkload()
	if _, err := mustOpen(t, g).Prepare(nil); err == nil {
		t.Error("Prepare(nil) must error")
	}
}

// TestEmptySet: an empty rule set prepares and detects cleanly.
func TestEmptySet(t *testing.T) {
	g, _, _ := capitalWorkload()
	prep, err := mustOpen(t, g).Prepare(core.MustNewSet())
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range []validate.Engine{validate.EngineSequential, validate.EngineReplicated, validate.EngineFragmented} {
		res, err := prep.Detect(context.Background(), validate.Options{Engine: engine, N: 2})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Violations) != 0 {
			t.Errorf("%v: violations on empty set", engine)
		}
	}
}

// TestIncrementalIntegration: detectors built through the session share
// one attribute index while mutations flow through Apply, updates
// invalidate the session's prepared sets, and both paths agree.
func TestIncrementalIntegration(t *testing.T) {
	ctx := context.Background()
	g, set, melbourne := capitalWorkload()
	sess := mustOpen(t, g)
	prep, err := sess.Prepare(set)
	if err != nil {
		t.Fatal(err)
	}
	if res, _ := prep.Detect(ctx, validate.Options{}); len(res.Violations) != 2 {
		t.Fatalf("baseline violations = %d, want 2", len(res.Violations))
	}

	det := sess.Incremental(set)
	if det.Len() != 2 {
		t.Fatalf("incremental initial violations = %d, want 2", det.Len())
	}
	// Repair through the detector: the graph version bumps, so the
	// session's prepared set re-freezes on its next Detect.
	det.Apply(incremental.SetAttr{Node: melbourne, Attr: "val", Value: "Canberra"})
	if det.Len() != 0 {
		t.Errorf("incremental post-repair violations = %d, want 0", det.Len())
	}
	res, err := prep.Detect(ctx, validate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Errorf("session post-repair violations = %d, want 0", len(res.Violations))
	}

	// A second detector reuses the maintained overlay while it is synced.
	det2 := sess.Incremental(set)
	if det2.Overlay() != det.Overlay() {
		t.Error("synced session detector must reuse the maintained overlay")
	}
	// A direct graph mutation desynchronizes it; the next detector gets a
	// fresh view and still agrees with the batch path.
	g.SetAttr(melbourne, "val", "Melbourne")
	det3 := sess.Incremental(set)
	if det3.Overlay() == det2.Overlay() {
		t.Error("desynced session detector must rebuild its view")
	}
	if det3.Len() != 2 {
		t.Errorf("rebuilt detector violations = %d, want 2", det3.Len())
	}
	res, err = prep.Detect(ctx, validate.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 2 {
		t.Errorf("session post-unrepair violations = %d, want 2", len(res.Violations))
	}
}
