// Package gfd is a Go implementation of graph functional dependencies
// (GFDs) as introduced by Fan, Wu & Xu, "Functional Dependencies for
// Graphs" (SIGMOD 2016).
//
// A GFD ϕ = (Q[x̄], X → Y) combines a topological constraint — a graph
// pattern Q matched by subgraph isomorphism — with an attribute dependency
// X → Y whose literals are x.A = c (constant, as in CFDs) or x.A = y.B
// (variable, as in FDs).
//
// # The prepared-session lifecycle
//
// Detection follows the prepared-statement idiom: build a graph, open a
// Session on it, Prepare a rule set once, then Detect — or pull
// violations lazily from Violations — any number of times:
//
//	sess, err := gfd.NewSession(g)
//	prep, err := sess.Prepare(set)
//	res, err := prep.Detect(ctx, gfd.Options{Engine: gfd.EngineReplicated, N: 16})
//	for v, err := range prep.Violations(ctx, gfd.Options{}) {
//		if err != nil { ... }
//		... // break stops detection mid-enumeration, promptly and leak-free
//	}
//
// Prepare freezes the graph into its compiled CSR Snapshot and lowers
// every rule (pattern labels and X → Y literals) onto the frozen symbol
// table; Detect dispatches on Options.Engine to the paper's engines —
// detVio (EngineSequential), repVal (EngineReplicated, Theorem 10),
// disVal (EngineFragmented, Theorem 11) — or the Exp-5 baselines
// (EngineGCFD, EngineBigDansing), all running from the same prepared
// artifacts. Freeze, workload reduction, grouping and rule lowering are
// paid once per (graph version, rule set) across every round; mutating
// the graph directly re-prepares automatically, exactly once per new
// version. Small mutations routed through Session.Apply (or an
// incremental detector) skip even that: they fold into a maintained
// delta Overlay the next Detect runs against, with a full re-freeze
// only when the accumulated delta outgrows the base (compaction).
// Violations runs the same engines as one fused, pull-based pipeline —
// match enumeration → compiled literal check → emission, with per-worker
// bounded lanes (Options.StreamBuffer) applying backpressure instead of
// a global emission lock — so the first violation surfaces long before
// the run finishes and memory stays bounded by the buffer, not the match
// set. Breaking out of the range (or cancelling ctx) stops candidate
// enumeration mid-class. Detect and the callback Stream are thin
// wrappers over the same pipeline, and every engine honors context
// cancellation.
//
// The package also provides:
//
//   - the property-graph model and a text format (NewGraph, ReadGraph);
//   - pattern construction and the GFD rule language (NewPattern, NewGFD,
//     ParseRules);
//   - the classical static analyses: Satisfiable and Implies, plus the
//     implication-based rule-set Reduce;
//   - workload tooling: Partition for fragmenting graphs, MineGFDs for
//     generating rules from frequent graph features, and the generators
//     and noise injection used by the reproduction benchmarks;
//   - maintenance extensions: incremental detection (Session.Incremental
//     / NewIncremental) and repair suggestions (SuggestRepairs).
//
// The free functions Validate, ValidateParallel, ValidateFragmented and
// Satisfies predate the session API and remain as thin wrappers over a
// one-shot session; new code should prepare a session instead (see the
// deprecation notes on each).
//
// See README.md for a quickstart and DESIGN.md for the system inventory.
package gfd

import (
	"context"
	"io"

	"gfd/internal/cluster"
	"gfd/internal/core"
	"gfd/internal/dist"
	"gfd/internal/fault"
	"gfd/internal/fragment"
	"gfd/internal/gen"
	"gfd/internal/graph"
	"gfd/internal/incremental"
	"gfd/internal/pattern"
	"gfd/internal/reason"
	"gfd/internal/repair"
	"gfd/internal/session"
	"gfd/internal/store"
	"gfd/internal/validate"
)

// Core data-model types, re-exported for library users.
type (
	// Graph is a directed property graph G = (V, E, L, F_A).
	Graph = graph.Graph
	// NodeID identifies a node of a Graph.
	NodeID = graph.NodeID
	// Attrs is a node's attribute tuple.
	Attrs = graph.Attrs
	// Edge is a directed labeled edge.
	Edge = graph.Edge
	// NodeSet is a set of nodes (data blocks, violation entities).
	NodeSet = graph.NodeSet
	// Snapshot is the compiled, immutable CSR view of a Graph produced by
	// Graph.Freeze: interned labels, flat sorted adjacency, per-label
	// candidate ranges. Matching and validation hot paths run against it;
	// mutate the Graph, then Freeze again for a fresh view.
	Snapshot = graph.Snapshot
	// Topology is the compiled execution view the engines run against,
	// implemented by both *Snapshot (the immutable batch fast path) and
	// *Overlay (a snapshot plus update patches).
	Topology = graph.Topology
	// Overlay is a base Snapshot plus localized patches tracking
	// AddNode/AddEdge/SetAttr updates — the delta view Session.Apply and
	// the incremental detector maintain so small mutations stop costing a
	// full re-freeze.
	Overlay = graph.Overlay

	// Pattern is a graph pattern Q[x̄].
	Pattern = pattern.Pattern
	// Var is a pattern variable.
	Var = pattern.Var

	// Literal is an equality atom of a dependency.
	Literal = core.Literal
	// GFD is a graph functional dependency (Q[x̄], X → Y).
	GFD = core.GFD
	// Set is a named collection Σ of GFDs.
	Set = core.Set
	// Match is an instantiation h(x̄) of a pattern in a graph.
	Match = core.Match

	// Violation is one inconsistency: a match violating some rule.
	Violation = validate.Violation
	// Report is a violation set Vio(Σ, G).
	Report = validate.Report
	// Options configures detection: the engine to run (Options.Engine)
	// and the parallel engines' knobs.
	Options = validate.Options
	// Result carries violations plus engine instrumentation.
	Result = validate.Result
	// Engine selects the detection algorithm Prepared.Detect runs.
	Engine = validate.Engine
	// Retry is the per-unit retry budget (Options.Retry) the parallel
	// engines apply when a worker dies or a unit misses its deadline.
	Retry = validate.Retry
	// Completeness is the execution census of a detection run under the
	// fault-tolerant scheduler (Result.Completeness): units attempted,
	// succeeded, failed, retries, worker deaths.
	Completeness = validate.Completeness
	// PartialError is the error of a partial run: the failed units with
	// their last errors. errors.Is(err, ErrPartial) matches it.
	PartialError = validate.PartialError
	// UnitFailure is one abandoned work unit inside a PartialError.
	UnitFailure = validate.UnitFailure
	// DistOptions configures EngineDistributed (Options.Dist): the shard
	// manifest to execute over, the worker spawn command, and the
	// process-supervision knobs (heartbeat, handshake timeout, respawn
	// budget).
	DistOptions = validate.DistOptions
	// WorkerError is a recovered worker panic: worker id, unit id, panic
	// value, and the goroutine stack at recovery.
	WorkerError = cluster.WorkerError
	// FaultPlan is a deterministic fault-injection plan for Options.Inject
	// — testing only; nil (the default) makes every injection point a
	// no-op. Build one with NewFaultPlan or FaultPlanFromSeed.
	FaultPlan = fault.Plan
	// FaultSite names one instrumented injection point of a FaultPlan.
	FaultSite = fault.Site

	// Session owns a graph and its compiled execution caches; open one
	// with NewSession, then Prepare rule sets against it.
	Session = session.Session
	// Prepared is a rule set compiled against a session's graph: Detect,
	// the pull-based Violations iterator, and the callback Stream run any
	// engine from the prepared artifacts.
	Prepared = session.Prepared

	// Fragmentation is an n-way partition of a graph across workers.
	Fragmentation = fragment.Fragmentation

	// Conflict explains an unsatisfiable rule set.
	Conflict = reason.Conflict
)

// Wildcard is the pattern label '_' matching any node or edge label.
const Wildcard = pattern.Wildcard

// Engine values for Options.Engine: the paper's three detection
// algorithms plus the two Exp-5 baselines. EngineAuto (the zero value)
// resolves to EngineReplicated.
const (
	EngineAuto       = validate.EngineAuto
	EngineSequential = validate.EngineSequential
	EngineReplicated = validate.EngineReplicated
	EngineFragmented = validate.EngineFragmented
	EngineGCFD       = validate.EngineGCFD
	EngineBigDansing = validate.EngineBigDansing
	// EngineDistributed runs detection as real worker processes over
	// persisted shards (Options.Dist names the manifest). Any binary
	// embedding this package that may act as the spawn target must call
	// dist.MaybeWorker first thing in main.
	EngineDistributed = validate.EngineDistributed
)

// Failure-semantics errors (see README "Failure semantics"): ErrPartial
// marks a Detect result whose violation set may be incomplete after retry
// budgets exhausted (the concrete error is a *PartialError listing the
// failed units; Result.Completeness carries the census); ErrNilGraph is
// NewSession's typed rejection of a nil graph.
var (
	ErrPartial  = validate.ErrPartial
	ErrNilGraph = session.ErrNilGraph
)

// FaultPlan injection sites, for FaultPlan.PanicAt.
const (
	FaultUnitStart = fault.UnitStart
	FaultMatch     = fault.Match
	FaultLiteral   = fault.Literal
	FaultShip      = fault.Ship
)

// NewFaultPlan returns an empty fault plan tagged with a seed; chain
// KillWorker / DelayUnit / PanicAt and set it as Options.Inject. Testing
// only — production leaves Options.Inject nil and pays nothing.
// MaybeWorker turns the current process into an EngineDistributed worker
// when it was spawned as one (recognized by environment, not flags), never
// returning in that case. Call it first thing in main of any binary that
// may serve as the distributed engine's spawn target.
func MaybeWorker() { dist.MaybeWorker() }

// WriteShards persists g's frozen snapshot as n per-fragment shards plus a
// shard manifest under dir (files <prefix>.<i>.gfds, <prefix>.manifest),
// partitioned by strategy name ("hash" or "range"). The returned manifest
// path is what Options.Dist.ManifestPath takes.
func WriteShards(g *Graph, n int, strategy, dir, prefix string) (string, error) {
	s, err := fragment.ParseStrategy(strategy)
	if err != nil {
		return "", err
	}
	return dist.WriteShards(g.Freeze(), n, s, dir, prefix)
}

func NewFaultPlan(seed int64) *FaultPlan { return fault.NewPlan(seed) }

// FaultPlanFromSeed derives a pseudo-random recoverable fault plan — the
// chaos suite sweeps seeds and logs only the failing seed, which replays
// the exact plan.
func FaultPlanFromSeed(seed int64, workers, units int) *FaultPlan {
	return fault.FromSeed(seed, workers, units)
}

// NewSession opens a prepared session on g — the entry point of the
// build → NewSession → Prepare → Detect/Violations lifecycle. The graph
// stays owned by the caller; the session pays freeze and rule-lowering
// costs once per graph version and rule set. A nil graph returns
// ErrNilGraph (a typed error, not a panic — servers can reject the bad
// request and keep running).
func NewSession(g *Graph) (*Session, error) { return session.New(g) }

// NewGraph returns an empty graph with capacity hints.
func NewGraph(nodeHint, edgeHint int) *Graph { return graph.New(nodeHint, edgeHint) }

// ReadGraph parses the line-oriented graph text format.
func ReadGraph(r io.Reader) (*Graph, map[string]NodeID, error) { return graph.Read(r) }

// WriteGraph serializes a graph in the text format.
func WriteGraph(w io.Writer, g *Graph) error { return graph.Write(w, g) }

// LoadedSnapshot is an open persisted snapshot (.gfds file): the decoded
// Snapshot plus the read-only memory mapping backing its arrays. Keep it
// alive as long as anything derived from the snapshot is in use, then
// Close it — unless the graph migrated off the mapping first (any
// mutation, including through Session.Apply, does).
type LoadedSnapshot = store.Loaded

// Persistence errors: every load failure of a .gfds file wraps one of
// these (branch with errors.Is). ErrSnapshotCorrupt covers structural
// damage — truncation, checksum mismatch, a lying section table, invalid
// graph invariants; ErrSnapshotVersion covers files written by a format
// revision (or byte order) this build cannot read.
var (
	ErrSnapshotCorrupt = store.ErrCorrupt
	ErrSnapshotVersion = store.ErrVersion
)

// SaveSnapshot persists g's frozen snapshot to path in the versioned
// binary format (.gfds), atomically and durably (fsync before rename).
// The freeze is cached per graph version, so saving an already-frozen
// graph writes without rebuilding anything. See docs/SNAPSHOT_FORMAT.md
// for the format.
func SaveSnapshot(ctx context.Context, g *Graph, path string) error {
	return store.Save(ctx, g.Freeze(), path)
}

// OpenSnapshot maps a saved snapshot read-only and opens a Session over
// it. The cold path is Open → Prepare → Detect with zero snapshot builds:
// the session's graph is a lazy view over the mapping, so no rebuild and
// no copy of the CSR arrays happens until the graph is actually mutated —
// at which point it migrates to the heap transparently and the mapping
// can be closed. The returned LoadedSnapshot owns the mapping; close it
// when the session is done (or after the first mutation).
func OpenSnapshot(ctx context.Context, path string) (*Session, *LoadedSnapshot, error) {
	l, err := store.Open(ctx, path)
	if err != nil {
		return nil, nil, err
	}
	sess, err := session.New(l.Snapshot().Graph())
	if err != nil {
		l.Close()
		return nil, nil, err
	}
	return sess, l, nil
}

// NewPattern returns an empty graph pattern.
func NewPattern() *Pattern { return pattern.New() }

// Const builds the constant literal x.A = c.
func Const(x Var, a, c string) Literal { return core.Const(x, a, c) }

// VarEq builds the variable literal x.A = y.B.
func VarEq(x Var, a string, y Var, b string) Literal { return core.VarEq(x, a, y, b) }

// NewGFD constructs and validates a GFD.
func NewGFD(name string, q *Pattern, x, y []Literal) (*GFD, error) {
	return core.New(name, q, x, y)
}

// MustGFD is NewGFD that panics on error.
func MustGFD(name string, q *Pattern, x, y []Literal) *GFD {
	return core.MustNew(name, q, x, y)
}

// NewSet builds a rule set from rules with unique names.
func NewSet(rules ...*GFD) (*Set, error) { return core.NewSet(rules...) }

// MustSet is NewSet that panics on error.
func MustSet(rules ...*GFD) *Set { return core.MustNewSet(rules...) }

// ParseRules reads a GFD rule file.
func ParseRules(r io.Reader) (*Set, error) { return core.ParseRules(r) }

// WriteRules serializes a rule set in the rule-file format.
func WriteRules(w io.Writer, s *Set) error { return core.WriteRules(w, s) }

// FromFD encodes a relational FD R(lhs → rhs) as a GFD (Example 5, ϕ4).
func FromFD(name, relation string, lhs, rhs []string) *GFD {
	return core.FromFD(name, relation, lhs, rhs)
}

// CFDCondition is a fixed attribute binding of a CFD pattern tuple.
type CFDCondition = core.CFDCondition

// FromCFD encodes a two-tuple CFD as a GFD (Example 5, ϕ4').
func FromCFD(name, relation string, conds []CFDCondition, lhs, rhs []string) *GFD {
	return core.FromCFD(name, relation, conds, lhs, rhs)
}

// FromConstantCFD encodes a single-tuple constant CFD (Example 5, ϕ4”).
func FromConstantCFD(name, relation string, conds, consequent []CFDCondition) *GFD {
	return core.FromConstantCFD(name, relation, conds, consequent)
}

// RequireAttr builds the GFD forcing every node of a type to carry an
// attribute (Section 3, special case 3).
func RequireAttr(name, typ, attr string) *GFD { return core.RequireAttr(name, typ, attr) }

// Satisfiable decides whether Σ has a model (Theorem 1). The returned
// Conflict is non-nil exactly when the set is unsatisfiable.
func Satisfiable(s *Set) (bool, *Conflict) { return reason.Satisfiable(s) }

// Implies decides Σ |= ϕ (Theorem 5). Σ is assumed satisfiable.
func Implies(s *Set, f *GFD) bool { return reason.Implies(s, f) }

// Reduce removes rules implied by the rest of the set — the workload
// reduction optimization.
func Reduce(s *Set) *Set { return reason.Reduce(s) }

// oneShot prepares a throwaway session for the legacy free functions.
// New/Prepare only fail on nil inputs, which the old entry points would
// have crashed on anyway — the deprecated path keeps that contract.
func oneShot(g *Graph, s *Set) *Prepared {
	sess, err := session.New(g)
	if err != nil {
		panic(err)
	}
	p, err := sess.Prepare(s)
	if err != nil {
		panic(err)
	}
	return p
}

// Validate runs the sequential detector detVio and returns Vio(Σ, G).
//
// Deprecated: Validate builds a one-shot session per call. Callers
// validating the same graph more than once should use NewSession /
// Session.Prepare and Detect with EngineSequential.
func Validate(g *Graph, s *Set) Report {
	res, _ := oneShot(g, s).Detect(context.Background(), Options{Engine: EngineSequential})
	return res.Violations
}

// ValidateCtx is Validate with cancellation (the sequential algorithm can
// run for a very long time on large graphs).
//
// Deprecated: see Validate; Prepared.Detect takes a context for every
// engine.
func ValidateCtx(ctx context.Context, g *Graph, s *Set) (Report, error) {
	return validate.DetVioCtx(ctx, g, s)
}

// Satisfies reports G |= Σ: no rule has a violation. It stops at the
// first violation found.
//
// Deprecated: see Validate; with a session, breaking out of Violations
// at the first yielded violation is the early-stopping equivalent.
func Satisfies(g *Graph, s *Set) bool {
	violated := false
	_ = oneShot(g, s).Stream(context.Background(), Options{Engine: EngineSequential},
		func(Violation) bool { violated = true; return false })
	return !violated
}

// ValidateParallel runs repVal: parallel scalable detection over a graph
// replicated at every worker.
//
// Deprecated: ValidateParallel builds a one-shot session per call.
// Callers validating the same graph more than once should use NewSession
// / Session.Prepare and Detect with EngineReplicated.
func ValidateParallel(g *Graph, s *Set, opt Options) *Result {
	opt.Engine = EngineReplicated
	res, _ := oneShot(g, s).Detect(context.Background(), opt)
	return res
}

// Partition fragments a graph into n fragments by node hashing, for
// ValidateFragmented (a session caches these per graph version when
// Options.Frag is left nil).
func Partition(g *Graph, n int) *Fragmentation {
	return fragment.Partition(g, n, fragment.Hash)
}

// ValidateFragmented runs disVal: parallel detection over a fragmented
// graph, balancing load and minimizing simulated data shipment.
//
// Deprecated: ValidateFragmented builds a one-shot session per call.
// Callers validating the same graph more than once should use NewSession
// / Session.Prepare and Detect with EngineFragmented (Options.Frag
// optional).
func ValidateFragmented(g *Graph, frag *Fragmentation, s *Set, opt Options) *Result {
	opt.Engine = EngineFragmented
	opt.Frag = frag
	res, _ := oneShot(g, s).Detect(context.Background(), opt)
	return res
}

// MineConfig configures rule mining.
type MineConfig = gen.MineConfig

// MineGFDs generates GFDs from frequent features of g, as in the paper's
// evaluation setup.
func MineGFDs(g *Graph, cfg MineConfig) *Set { return gen.MineGFDs(g, cfg) }

// Incremental validation: maintain Vio(Σ, G) under updates (node/edge
// insertions and attribute assignments) by re-checking only the work
// units whose pivots lie near the touched nodes.
type (
	// IncrementalDetector maintains the violation set across updates.
	IncrementalDetector = incremental.Detector
	// UpdateAddNode inserts a node.
	UpdateAddNode = incremental.AddNode
	// UpdateAddEdge inserts an edge.
	UpdateAddEdge = incremental.AddEdge
	// UpdateSetAttr assigns an attribute value.
	UpdateSetAttr = incremental.SetAttr
)

// NewIncremental builds an incremental detector with an initial full
// validation of g against Σ. The detector maintains a delta Overlay over
// the graph's frozen snapshot and re-validates touched units on the
// compiled match path; no full snapshot is rebuilt per update batch.
// Session.Incremental is the session-aware equivalent: it shares one
// maintained overlay across detectors and Session.Apply, so the
// session's prepared rule sets follow updates without re-freezing.
func NewIncremental(g *Graph, s *Set) *IncrementalDetector { return incremental.New(g, s) }

// RepairSuggestion is one proposed attribute fix derived from a violation
// report.
type RepairSuggestion = repair.Suggestion

// SuggestRepairs analyzes a violation report and proposes attribute
// repairs: failed constant literals state the required value outright;
// failed variable literals are resolved by blame voting across
// disagreeing partners.
func SuggestRepairs(g *Graph, s *Set, vio Report) []RepairSuggestion {
	return repair.Suggest(g, s, vio)
}

// ApplyRepairs replays suggestions with confidence at or above threshold
// onto the graph and reports how many were applied.
func ApplyRepairs(g *Graph, suggestions []RepairSuggestion, threshold float64) int {
	return repair.Apply(g, suggestions, threshold)
}
